//! The transpilation target: one object describing the device being
//! compiled for.
//!
//! The seed threaded `(CouplingMap, Arc<CoverageSet>, CostCache, mirror
//! flag)` tuples ad-hoc through pipeline → trials → router → bench, and
//! rebuilt fresh cost caches inside every pipeline branch. [`Target`]
//! replaces that plumbing with a single immutable-after-construction
//! object owning:
//!
//! * the [`CouplingMap`] connectivity graph,
//! * the basis gate ([`BasisGate`]) the device natively executes,
//! * the per-depth [`CoverageSet`] for that basis — built **lazily** on
//!   first cost query, since topology-only work (VF2 embedding, SWAP-only
//!   routing baselines) never needs it,
//! * a [`DurationModel`] for instruction weights, and
//! * one process-wide-shareable sharded [`SharedCostCache`] consulted by
//!   every routing trial, refinement pass, and metric computation.
//!
//! `Target` is `Send + Sync`; routing trials running on scoped threads
//! share one instance by reference. Cached costs are pure functions of the
//! coordinate class, so sharing never changes results.
//!
//! ```
//! use mirage_core::target::Target;
//! use mirage_topology::CouplingMap;
//!
//! let target = Target::sqrt_iswap(CouplingMap::grid(6, 6));
//! assert_eq!(target.n_qubits(), 36);
//! assert!(!target.coverage_built(), "coverage is lazy");
//! ```

use mirage_circuit::{Circuit, Instruction};
use mirage_coverage::cache::SharedCostCache;
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_topology::CouplingMap;
use mirage_weyl::coords::{coords_of, WeylCoord};
use std::sync::{Arc, OnceLock};

/// Gate-duration model: how instruction weights are derived when scoring
/// circuits against a target.
///
/// Two-qubit gates cost their minimum decomposition duration in the target
/// basis (normalized units, iSWAP = 1.0); single-qubit gates cost
/// [`DurationModel::one_qubit`]. The paper treats single-qubit gates as
/// free (§IV-B), which is the default.
#[derive(Debug, Clone, Copy)]
pub struct DurationModel {
    /// Duration charged per single-qubit gate.
    pub one_qubit: f64,
}

impl Default for DurationModel {
    fn default() -> Self {
        DurationModel { one_qubit: 0.0 }
    }
}

/// Default capacity of a target's shared cost cache (coordinate classes).
const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// The paper-default coverage construction parameters for a standard
/// (mirror-free) costing set.
fn default_coverage_options(seed: u64) -> CoverageOptions {
    CoverageOptions {
        max_k: 3,
        samples_per_k: 1200,
        inflation: 0.012,
        mirrors: false,
        seed,
    }
}

/// The shared default coverage set: √iSWAP, three levels, standard
/// (mirror-free) regions — the costing basis of every paper experiment.
/// Built once per process and shared by every [`Target::sqrt_iswap`].
fn default_coverage() -> Arc<CoverageSet> {
    static SET: OnceLock<Arc<CoverageSet>> = OnceLock::new();
    SET.get_or_init(|| {
        Arc::new(CoverageSet::build(
            BasisGate::iswap_root(2),
            &default_coverage_options(0xC0FFEE),
        ))
    })
    .clone()
}

/// Process-wide CNOT-basis coverage set shared by [`Target::cnot`].
fn cnot_coverage() -> Arc<CoverageSet> {
    static SET: OnceLock<Arc<CoverageSet>> = OnceLock::new();
    SET.get_or_init(|| {
        Arc::new(CoverageSet::build(
            BasisGate::cnot(),
            &default_coverage_options(0xC407),
        ))
    })
    .clone()
}

/// Process-wide CZ-basis coverage set shared by [`Target::cz`].
fn cz_coverage() -> Arc<CoverageSet> {
    static SET: OnceLock<Arc<CoverageSet>> = OnceLock::new();
    SET.get_or_init(|| {
        Arc::new(CoverageSet::build(
            BasisGate::cz(),
            &default_coverage_options(0xC2),
        ))
    })
    .clone()
}

/// A transpilation target: coupling topology, basis gate, lazily-built
/// coverage set, duration model, and the shared cost cache.
///
/// See the [module docs](self) for design rationale.
#[derive(Debug)]
pub struct Target {
    topo: CouplingMap,
    basis: BasisGate,
    coverage_opts: CoverageOptions,
    coverage: OnceLock<Arc<CoverageSet>>,
    /// When set, `coverage()` resolves through a process-wide shared set
    /// instead of building a private one (the stock basis constructors use
    /// this so repeated `Target`s never rebuild identical polytopes).
    shared_coverage: Option<fn() -> Arc<CoverageSet>>,
    durations: DurationModel,
    cache: SharedCostCache,
}

impl Target {
    /// A target with an explicit basis and coverage-construction options;
    /// the coverage set is built on first cost query.
    pub fn new(topo: CouplingMap, basis: BasisGate, coverage_opts: CoverageOptions) -> Target {
        Target {
            topo,
            basis,
            coverage_opts,
            coverage: OnceLock::new(),
            shared_coverage: None,
            durations: DurationModel::default(),
            cache: SharedCostCache::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// A target with a pre-built coverage set (bench binaries construct
    /// full-quality sets up front and share them across targets).
    pub fn with_coverage(topo: CouplingMap, coverage: Arc<CoverageSet>) -> Target {
        let basis = coverage.basis.clone();
        let cell = OnceLock::new();
        cell.set(coverage).expect("fresh cell");
        Target {
            topo,
            basis,
            coverage_opts: CoverageOptions::default(),
            coverage: cell,
            shared_coverage: None,
            durations: DurationModel::default(),
            cache: SharedCostCache::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// The paper configuration: a √iSWAP-basis device. All `sqrt_iswap`
    /// targets share one process-wide coverage set (built on first use).
    pub fn sqrt_iswap(topo: CouplingMap) -> Target {
        let mut t = Target::new(
            topo,
            BasisGate::iswap_root(2),
            default_coverage_options(0xC0FFEE),
        );
        t.shared_coverage = Some(default_coverage);
        t
    }

    /// A CNOT-basis device (unit-duration CNOT, full chamber at `k = 3`).
    pub fn cnot(topo: CouplingMap) -> Target {
        let mut t = Target::new(topo, BasisGate::cnot(), default_coverage_options(0xC407));
        t.shared_coverage = Some(cnot_coverage);
        t
    }

    /// A CZ-basis device (same canonical class as CNOT; the basis unitary
    /// differs, which matters for pulse translation).
    pub fn cz(topo: CouplingMap) -> Target {
        let mut t = Target::new(topo, BasisGate::cz(), default_coverage_options(0xC2));
        t.shared_coverage = Some(cz_coverage);
        t
    }

    /// Replace the duration model (builder style).
    #[must_use]
    pub fn with_durations(mut self, durations: DurationModel) -> Target {
        self.durations = durations;
        self
    }

    /// Replace the shared cost cache with one of the given capacity
    /// (builder style; the runtime-figure binary uses capacity 1 to
    /// emulate the pre-caching behaviour the paper compares against).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Target {
        self.cache = SharedCostCache::new(capacity);
        self
    }

    /// The coupling topology.
    pub fn topology(&self) -> &CouplingMap {
        &self.topo
    }

    /// Device width.
    pub fn n_qubits(&self) -> usize {
        self.topo.n_qubits()
    }

    /// The native basis gate.
    pub fn basis(&self) -> &BasisGate {
        &self.basis
    }

    /// The duration model.
    pub fn durations(&self) -> &DurationModel {
        &self.durations
    }

    /// A short identifier, e.g. `sqrt_iswap@grid-6x6`.
    pub fn name(&self) -> String {
        format!("{}@{}", self.basis.name, self.topo.name())
    }

    /// The coverage set, building it on first call.
    pub fn coverage(&self) -> &Arc<CoverageSet> {
        self.coverage.get_or_init(|| match self.shared_coverage {
            Some(shared) => shared(),
            None => Arc::new(CoverageSet::build(self.basis.clone(), &self.coverage_opts)),
        })
    }

    /// True once the lazy coverage set has been built (or was supplied at
    /// construction).
    pub fn coverage_built(&self) -> bool {
        self.coverage.get().is_some()
    }

    /// The shared cost cache.
    pub fn cache(&self) -> &SharedCostCache {
        &self.cache
    }

    /// Aggregate `(hits, misses)` of the shared cost cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Minimum decomposition duration of coordinate class `w` in the
    /// target basis, answered through the shared cache (unreachable
    /// classes are charged one application past the deepest built level,
    /// keeping the cost function total).
    pub fn gate_cost(&self, w: &WeylCoord) -> f64 {
        let coverage = self.coverage();
        self.cache.get_or_insert_with(w, || coverage.cost_or_max(w))
    }

    /// Instruction weight under the duration model: two-qubit gates cost
    /// their decomposition duration, single-qubit gates cost
    /// [`DurationModel::one_qubit`].
    pub fn duration_weight(&self, instr: &Instruction) -> f64 {
        if !instr.gate.is_two_qubit() {
            return self.durations.one_qubit;
        }
        self.gate_cost(&coords_of(&instr.gate.matrix2()))
    }

    /// Duration-weighted critical path of a circuit on this target
    /// (MIRAGE-Depth's post-selection metric, paper §IV-B).
    pub fn depth_estimate(&self, c: &Circuit) -> f64 {
        c.weighted_depth(|i| self.duration_weight(i))
    }

    /// Total decomposition cost (sum over all gates).
    pub fn total_gate_cost(&self, c: &Circuit) -> f64 {
        c.instructions.iter().map(|i| self.duration_weight(i)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_circuit::generators::ghz;

    #[test]
    fn lazy_coverage_not_built_on_construction() {
        let t = Target::sqrt_iswap(CouplingMap::line(4));
        assert!(!t.coverage_built());
        let _ = t.gate_cost(&WeylCoord::CNOT);
        assert!(t.coverage_built());
    }

    #[test]
    fn sqrt_iswap_costs_match_paper() {
        let t = Target::sqrt_iswap(CouplingMap::line(3));
        assert!((t.gate_cost(&WeylCoord::CNOT) - 1.0).abs() < 1e-12);
        assert!((t.gate_cost(&WeylCoord::SWAP) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cnot_basis_prices_cnot_at_one_application() {
        let t = Target::cnot(CouplingMap::line(3));
        assert!((t.gate_cost(&WeylCoord::CNOT) - 1.0).abs() < 1e-12);
        assert!((t.gate_cost(&WeylCoord::ISWAP) - 2.0).abs() < 1e-12);
        assert!((t.gate_cost(&WeylCoord::SWAP) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cz_basis_matches_cnot_costs() {
        let cz = Target::cz(CouplingMap::line(3));
        let cnot = Target::cnot(CouplingMap::line(3));
        for w in [WeylCoord::CNOT, WeylCoord::ISWAP, WeylCoord::SWAP] {
            assert!((cz.gate_cost(&w) - cnot.gate_cost(&w)).abs() < 1e-12);
        }
        assert_eq!(cz.basis().name, "cz");
    }

    #[test]
    fn gate_cost_is_cached() {
        let t = Target::sqrt_iswap(CouplingMap::line(3));
        let a = t.gate_cost(&WeylCoord::CNOT);
        let b = t.gate_cost(&WeylCoord::CNOT);
        assert_eq!(a, b);
        let (hits, misses) = t.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn depth_and_total_cost() {
        let t = Target::sqrt_iswap(CouplingMap::line(4));
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3).swap(1, 2);
        // cx (1.0) ∥ cx (1.0), then swap (1.5): critical = 2.5, total 3.5.
        assert!((t.depth_estimate(&c) - 2.5).abs() < 1e-9);
        assert!((t.total_gate_cost(&c) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn one_qubit_duration_model() {
        let t = Target::sqrt_iswap(CouplingMap::line(2))
            .with_durations(DurationModel { one_qubit: 0.1 });
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        assert!((t.depth_estimate(&c) - 1.1).abs() < 1e-9);
    }

    #[test]
    fn with_coverage_is_prebuilt() {
        let cov = default_coverage();
        let t = Target::with_coverage(CouplingMap::ring(5), cov.clone());
        assert!(t.coverage_built());
        assert_eq!(t.basis().name, "sqrt_iswap");
        assert!(Arc::ptr_eq(t.coverage(), &cov));
    }

    #[test]
    fn name_combines_basis_and_topology() {
        let t = Target::cnot(CouplingMap::grid(2, 3));
        assert_eq!(t.name(), "cnot@grid-2x3");
        assert_eq!(t.n_qubits(), 6);
    }

    #[test]
    fn target_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Target>();
        let _ = ghz(2); // keep the generators import exercised
    }
}
