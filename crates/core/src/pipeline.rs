//! The end-to-end transpile pipeline (paper §V):
//! consolidate → VF2 no-SWAP check → layout + routing trials → metrics.

use crate::layout::Layout;
use crate::router::RoutedCircuit;
use crate::trials::{self, Metric, TrialOptions};
use mirage_circuit::consolidate::consolidate;
use mirage_circuit::Circuit;
use mirage_coverage::cache::CostCache;
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_topology::vf2::{find_embedding, InteractionGraph};
use mirage_topology::CouplingMap;
use std::sync::{Arc, OnceLock};

/// Which router to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// The SABRE baseline: no mirrors, swap-count post-selection.
    Sabre,
    /// MIRAGE with swap-count post-selection (the paper's MIRAGE-Swaps).
    MirageSwaps,
    /// MIRAGE with depth post-selection (the paper's headline MIRAGE).
    Mirage,
}

/// Transpilation options.
#[derive(Debug, Clone)]
pub struct TranspileOptions {
    /// Router selection.
    pub router: RouterKind,
    /// Trial-loop configuration.
    pub trials: TrialOptions,
    /// Try a VF2 embedding first and skip routing when one exists.
    pub use_vf2: bool,
    /// VF2 search-node budget.
    pub vf2_budget: usize,
    /// Coverage set override (defaults to a shared √iSWAP set).
    pub coverage: Option<Arc<CoverageSet>>,
}

impl TranspileOptions {
    /// Light settings for tests and examples.
    pub fn quick(router: RouterKind, seed: u64) -> TranspileOptions {
        let metric = match router {
            RouterKind::Mirage => Metric::Depth,
            _ => Metric::SwapCount,
        };
        TranspileOptions {
            router,
            trials: TrialOptions::quick(metric, seed),
            use_vf2: true,
            vf2_budget: 200_000,
            coverage: None,
        }
    }

    /// The paper's full evaluation settings (20 layouts × 4 passes × 20
    /// routes, parallel).
    pub fn paper(router: RouterKind, seed: u64) -> TranspileOptions {
        let metric = match router {
            RouterKind::Mirage => Metric::Depth,
            _ => Metric::SwapCount,
        };
        TranspileOptions {
            router,
            trials: TrialOptions::paper(metric, seed),
            use_vf2: true,
            vf2_budget: 1_000_000,
            coverage: None,
        }
    }
}

/// Aggregate metrics of a transpiled circuit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Metrics {
    /// Duration-weighted critical path (normalized units, iSWAP = 1.0).
    pub depth_estimate: f64,
    /// Sum of two-qubit decomposition costs.
    pub total_gate_cost: f64,
    /// Number of two-qubit gates in the output.
    pub two_qubit_gates: usize,
    /// SWAP gates inserted by routing.
    pub swaps_inserted: usize,
    /// Mirror gates accepted.
    pub mirrors_accepted: usize,
    /// Mirror acceptance rate over intermediate-layer decisions.
    pub mirror_rate: f64,
}

/// The transpilation result.
#[derive(Debug, Clone)]
pub struct TranspiledCircuit {
    /// Output circuit on physical qubits.
    pub circuit: Circuit,
    /// Placement at circuit start.
    pub initial_layout: Layout,
    /// Placement at circuit end.
    pub final_layout: Layout,
    /// Aggregate metrics.
    pub metrics: Metrics,
    /// True when VF2 found a SWAP-free embedding and routing was skipped.
    pub used_vf2: bool,
}

/// Transpilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranspileError {
    /// The circuit has more qubits than the device.
    CircuitTooLarge {
        /// Circuit width.
        circuit: usize,
        /// Device width.
        device: usize,
    },
    /// The coupling graph is disconnected.
    DisconnectedTopology,
}

impl std::fmt::Display for TranspileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranspileError::CircuitTooLarge { circuit, device } => {
                write!(f, "circuit needs {circuit} qubits, device has {device}")
            }
            TranspileError::DisconnectedTopology => write!(f, "coupling map is disconnected"),
        }
    }
}

impl std::error::Error for TranspileError {}

/// The shared default coverage set: √iSWAP, three levels, standard
/// (mirror-free) regions — the costing basis for every experiment unless
/// overridden.
pub fn default_coverage() -> Arc<CoverageSet> {
    static SET: OnceLock<Arc<CoverageSet>> = OnceLock::new();
    SET.get_or_init(|| {
        let opts = CoverageOptions {
            max_k: 3,
            samples_per_k: 1200,
            inflation: 0.012,
            mirrors: false,
            seed: 0xC0FFEE,
        };
        Arc::new(CoverageSet::build(BasisGate::iswap_root(2), &opts))
    })
    .clone()
}

/// Transpile `circuit` onto `topo`.
///
/// # Errors
///
/// See [`TranspileError`].
pub fn transpile(
    circuit: &Circuit,
    topo: &CouplingMap,
    opts: &TranspileOptions,
) -> Result<TranspiledCircuit, TranspileError> {
    if circuit.n_qubits > topo.n_qubits() {
        return Err(TranspileError::CircuitTooLarge {
            circuit: circuit.n_qubits,
            device: topo.n_qubits(),
        });
    }
    if !topo.is_connected() {
        return Err(TranspileError::DisconnectedTopology);
    }
    let coverage = opts
        .coverage
        .clone()
        .unwrap_or_else(default_coverage);

    // Input cleaning (paper §V): drop identities, cancel inverses, merge
    // rotations, and elide explicit SWAPs into a wire relabeling — a SWAP
    // written in the source is free data movement, not router work. The
    // relabeling permutation is folded back into the final layout below.
    let cleaned = mirage_circuit::passes::clean(circuit);
    let (elided, wire_perm) = mirage_circuit::passes::elide_swaps(&cleaned);
    let consolidated = consolidate(&elided);

    // VF2 pre-pass: a SWAP-free embedding makes routing unnecessary.
    if opts.use_vf2 {
        let edges: Vec<(usize, usize)> = consolidated.interaction_edges().into_iter().collect();
        let g = InteractionGraph::new(consolidated.n_qubits, edges);
        if let Some(embedding) = find_embedding(&g, topo, opts.vf2_budget) {
            let layout = Layout::from_assignment(&embedding, topo.n_qubits());
            let mut placed = Circuit::new(topo.n_qubits());
            for instr in &consolidated.instructions {
                let qubits: Vec<usize> =
                    instr.qubits.iter().map(|&q| layout.phys(q)).collect();
                placed.push(instr.gate.clone(), &qubits);
            }
            let mut cache = CostCache::new(4096);
            let metrics = Metrics {
                depth_estimate: trials::depth_estimate(&placed, &coverage, &mut cache),
                total_gate_cost: trials::total_gate_cost(&placed, &coverage, &mut cache),
                two_qubit_gates: placed.two_qubit_gate_count(),
                swaps_inserted: 0,
                mirrors_accepted: 0,
                mirror_rate: 0.0,
            };
            let final_assignment: Vec<usize> = (0..circuit.n_qubits)
                .map(|w| layout.phys(wire_perm[w]))
                .collect();
            return Ok(TranspiledCircuit {
                circuit: placed,
                initial_layout: layout,
                final_layout: Layout::from_assignment(&final_assignment, topo.n_qubits()),
                metrics,
                used_vf2: true,
            });
        }
    }

    let mirage = matches!(opts.router, RouterKind::Mirage | RouterKind::MirageSwaps);
    let mut routed: RoutedCircuit =
        trials::route_with_trials(&consolidated, topo, &coverage, mirage, &opts.trials);

    // Compose the SWAP-elision relabeling into the final layout: original
    // output wire `w` lives on elided wire `wire_perm[w]`, which routing
    // placed at `final_layout.phys(wire_perm[w])`.
    let adjusted: Vec<usize> = (0..circuit.n_qubits)
        .map(|w| routed.final_layout.phys(wire_perm[w]))
        .collect();
    routed.final_layout = Layout::from_assignment(&adjusted, topo.n_qubits());

    let mut cache = CostCache::new(4096);
    let metrics = Metrics {
        depth_estimate: trials::depth_estimate(&routed.circuit, &coverage, &mut cache),
        total_gate_cost: trials::total_gate_cost(&routed.circuit, &coverage, &mut cache),
        two_qubit_gates: routed.circuit.two_qubit_gate_count(),
        swaps_inserted: routed.swaps_inserted,
        mirrors_accepted: routed.mirrors_accepted,
        mirror_rate: routed.mirror_rate(),
    };
    Ok(TranspiledCircuit {
        circuit: routed.circuit,
        initial_layout: routed.initial_layout,
        final_layout: routed.final_layout,
        metrics,
        used_vf2: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RoutedCircuit;
    use crate::verify::verify_routed;
    use mirage_circuit::generators::{ghz, qft, two_local_full};

    #[test]
    fn vf2_skips_routing_for_linear_circuits() {
        let c = ghz(5);
        let topo = CouplingMap::grid(3, 3);
        let out = transpile(&c, &topo, &TranspileOptions::quick(RouterKind::Sabre, 1)).unwrap();
        assert!(out.used_vf2, "GHZ embeds into a grid without SWAPs");
        assert_eq!(out.metrics.swaps_inserted, 0);
    }

    #[test]
    fn full_entanglement_requires_routing() {
        let c = two_local_full(4, 1, 7);
        let topo = CouplingMap::line(4);
        let out = transpile(&c, &topo, &TranspileOptions::quick(RouterKind::Mirage, 2)).unwrap();
        assert!(!out.used_vf2);
        let routed = RoutedCircuit {
            circuit: out.circuit.clone(),
            initial_layout: out.initial_layout.clone(),
            final_layout: out.final_layout.clone(),
            swaps_inserted: out.metrics.swaps_inserted,
            mirrors_accepted: out.metrics.mirrors_accepted,
            mirror_candidates: 1,
        };
        assert!(verify_routed(&c, &routed));
    }

    #[test]
    fn mirage_beats_or_ties_sabre_on_depth() {
        let c = qft(6, false);
        let topo = CouplingMap::line(6);
        let sabre = transpile(&c, &topo, &TranspileOptions::quick(RouterKind::Sabre, 3)).unwrap();
        let mirage =
            transpile(&c, &topo, &TranspileOptions::quick(RouterKind::Mirage, 3)).unwrap();
        assert!(
            mirage.metrics.depth_estimate <= sabre.metrics.depth_estimate * 1.05 + 1e-9,
            "mirage {:.2} vs sabre {:.2}",
            mirage.metrics.depth_estimate,
            sabre.metrics.depth_estimate
        );
    }

    #[test]
    fn too_large_circuit_errors() {
        let c = ghz(5);
        let topo = CouplingMap::line(3);
        let e = transpile(&c, &topo, &TranspileOptions::quick(RouterKind::Sabre, 4)).unwrap_err();
        assert!(matches!(e, TranspileError::CircuitTooLarge { .. }));
    }

    #[test]
    fn disconnected_topology_errors() {
        let c = ghz(3);
        let topo = CouplingMap::from_edges(4, &[(0, 1), (2, 3)], "broken");
        let e = transpile(&c, &topo, &TranspileOptions::quick(RouterKind::Sabre, 5)).unwrap_err();
        assert_eq!(e, TranspileError::DisconnectedTopology);
    }

    #[test]
    fn metrics_populated() {
        let c = two_local_full(4, 1, 8);
        let topo = CouplingMap::line(4);
        let out = transpile(&c, &topo, &TranspileOptions::quick(RouterKind::Mirage, 6)).unwrap();
        assert!(out.metrics.depth_estimate > 0.0);
        assert!(out.metrics.total_gate_cost >= out.metrics.depth_estimate);
        assert!(out.metrics.two_qubit_gates >= 6);
    }

    #[test]
    fn error_display() {
        let e = TranspileError::CircuitTooLarge {
            circuit: 9,
            device: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(TranspileError::DisconnectedTopology.to_string().contains("disconnected"));
    }
}
