//! The end-to-end transpile pipeline (paper §V):
//! consolidate → VF2 no-SWAP check → layout + routing trials → metrics.
//!
//! Every device-specific input — topology, basis gate, coverage set, cost
//! cache, calibration — arrives through one [`Target`], so the same
//! `transpile(&circuit, &target, &opts)` call serves the paper's √iSWAP
//! configuration, CNOT/CZ backends, and calibrated noisy devices alike.
//! Placement and routing run inside one [`TrialEngine`]: the VF2 pre-pass
//! is the engine's [`Vf2Embed`](crate::placement::Vf2Embed) strategy, and
//! the trial loop spreads its layout budget across the strategies of
//! [`crate::placement`] according to
//! [`TrialOptions::strategy_mix`](crate::trials::TrialOptions::strategy_mix).

use crate::layout::Layout;
use crate::placement;
use crate::router::RoutedCircuit;
use crate::target::Target;
use crate::trials::{Metric, TrialEngine, TrialOptions};
use mirage_circuit::consolidate::consolidate;
use mirage_circuit::Circuit;

/// Which router to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// The SABRE baseline: no mirrors, swap-count post-selection.
    Sabre,
    /// MIRAGE with swap-count post-selection (the paper's MIRAGE-Swaps).
    MirageSwaps,
    /// MIRAGE with depth post-selection (the paper's headline MIRAGE).
    Mirage,
}

impl RouterKind {
    /// The post-selection metric this router uses: only the headline
    /// MIRAGE selects by duration-weighted depth; the baseline and
    /// MIRAGE-Swaps select by fewest SWAPs (paper §IV-B).
    pub fn metric(self) -> Metric {
        match self {
            RouterKind::Mirage => Metric::Depth,
            RouterKind::Sabre | RouterKind::MirageSwaps => Metric::SwapCount,
        }
    }

    /// True for the MIRAGE variants (the intermediate mirror layer runs).
    pub fn uses_mirrors(self) -> bool {
        matches!(self, RouterKind::Mirage | RouterKind::MirageSwaps)
    }
}

/// Transpilation options.
#[derive(Debug, Clone)]
pub struct TranspileOptions {
    /// Router selection.
    pub router: RouterKind,
    /// Trial-loop configuration.
    pub trials: TrialOptions,
    /// Try a VF2 embedding first and skip routing when one exists.
    pub use_vf2: bool,
    /// VF2 search-node budget.
    pub vf2_budget: usize,
}

impl TranspileOptions {
    /// Light settings for tests and examples.
    pub fn quick(router: RouterKind, seed: u64) -> TranspileOptions {
        TranspileOptions {
            router,
            trials: TrialOptions::quick(router.metric(), seed),
            use_vf2: true,
            vf2_budget: 200_000,
        }
    }

    /// The paper's full evaluation settings (20 layouts × 4 passes × 20
    /// routes, parallel).
    pub fn paper(router: RouterKind, seed: u64) -> TranspileOptions {
        TranspileOptions {
            router,
            trials: TrialOptions::paper(router.metric(), seed),
            use_vf2: true,
            vf2_budget: 1_000_000,
        }
    }

    /// Override the post-selection metric (builder style) — e.g.
    /// [`Metric::EstimatedSuccess`] to route for predicted success
    /// probability on a calibrated target instead of the router's default.
    #[must_use]
    pub fn with_metric(mut self, metric: Metric) -> TranspileOptions {
        self.trials.metric = metric;
        self
    }
}

/// Aggregate metrics of a transpiled circuit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Metrics {
    /// Duration-weighted critical path (normalized units, iSWAP = 1.0).
    pub depth_estimate: f64,
    /// Sum of two-qubit decomposition costs.
    pub total_gate_cost: f64,
    /// Number of two-qubit gates in the output.
    pub two_qubit_gates: usize,
    /// SWAP gates inserted by routing.
    pub swaps_inserted: usize,
    /// Mirror gates accepted.
    pub mirrors_accepted: usize,
    /// Two-qubit gates that went through the intermediate layer.
    pub mirror_candidates: usize,
    /// Mirror acceptance rate over intermediate-layer decisions.
    pub mirror_rate: f64,
    /// Estimated success probability under the target's calibration
    /// (gate log-fidelity product plus readout on the logical qubits'
    /// final homes; `1.0` on an uncalibrated/zero-error target).
    pub estimated_success: f64,
}

/// The transpilation result.
#[derive(Debug, Clone)]
pub struct TranspiledCircuit {
    /// Output circuit on physical qubits.
    pub circuit: Circuit,
    /// Placement at circuit start.
    pub initial_layout: Layout,
    /// Placement at circuit end.
    pub final_layout: Layout,
    /// Aggregate metrics.
    pub metrics: Metrics,
    /// True when VF2 found a SWAP-free embedding and routing was skipped.
    pub used_vf2: bool,
}

impl TranspiledCircuit {
    /// View the result as a [`RoutedCircuit`] (the shape the verifier and
    /// router-level tooling consume).
    pub fn as_routed(&self) -> RoutedCircuit {
        RoutedCircuit {
            circuit: self.circuit.clone(),
            initial_layout: self.initial_layout.clone(),
            final_layout: self.final_layout.clone(),
            swaps_inserted: self.metrics.swaps_inserted,
            mirrors_accepted: self.metrics.mirrors_accepted,
            mirror_candidates: self.metrics.mirror_candidates,
        }
    }
}

/// Transpilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranspileError {
    /// The circuit has more qubits than the device.
    CircuitTooLarge {
        /// Circuit width.
        circuit: usize,
        /// Device width.
        device: usize,
    },
    /// The coupling graph is disconnected.
    DisconnectedTopology,
    /// A trial mix (aggression or layout-strategy shares) is
    /// mis-normalized — running it would silently re-allocate the trial
    /// budget, so it is rejected instead (see
    /// [`TrialOptions::validate`](crate::trials::TrialOptions::validate)).
    InvalidTrialMix {
        /// Which mix was rejected (`"aggression_mix"` / `"strategy_mix"`).
        which: &'static str,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for TranspileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranspileError::CircuitTooLarge { circuit, device } => {
                write!(f, "circuit needs {circuit} qubits, device has {device}")
            }
            TranspileError::DisconnectedTopology => write!(f, "coupling map is disconnected"),
            TranspileError::InvalidTrialMix { which, detail } => {
                write!(f, "invalid {which}: {detail}")
            }
        }
    }
}

impl std::error::Error for TranspileError {}

/// Transpile `circuit` onto `target`.
///
/// # Errors
///
/// See [`TranspileError`].
pub fn transpile(
    circuit: &Circuit,
    target: &Target,
    opts: &TranspileOptions,
) -> Result<TranspiledCircuit, TranspileError> {
    opts.trials.validate()?;
    let topo = target.topology();
    if circuit.n_qubits > topo.n_qubits() {
        return Err(TranspileError::CircuitTooLarge {
            circuit: circuit.n_qubits,
            device: topo.n_qubits(),
        });
    }
    if !topo.is_connected() {
        return Err(TranspileError::DisconnectedTopology);
    }

    // Input cleaning (paper §V): drop identities, cancel inverses, merge
    // rotations, and elide explicit SWAPs into a wire relabeling — a SWAP
    // written in the source is free data movement, not router work. The
    // relabeling permutation is folded back into the final layout below.
    let cleaned = mirage_circuit::passes::clean(circuit);
    let (elided, wire_perm) = mirage_circuit::passes::elide_swaps(&cleaned);
    let consolidated = consolidate(&elided);

    // One engine owns placement, refinement, routing, and post-selection.
    let engine = TrialEngine::new(&consolidated, target).with_vf2_budget(opts.vf2_budget);

    // VF2 pre-pass (the Vf2Embed strategy): a SWAP-free embedding makes
    // routing unnecessary; on calibrated targets ties between embeddings
    // break by estimated success.
    if opts.use_vf2 {
        if let Some(layout) = engine.vf2_layout() {
            let placed = placement::apply_layout(&consolidated, &layout);
            let final_assignment: Vec<usize> = (0..circuit.n_qubits)
                .map(|w| layout.phys(wire_perm[w]))
                .collect();
            let final_layout = Layout::from_assignment(&final_assignment, topo.n_qubits());
            let metrics = Metrics {
                depth_estimate: target.depth_estimate(&placed),
                total_gate_cost: target.total_gate_cost(&placed),
                two_qubit_gates: placed.two_qubit_gate_count(),
                swaps_inserted: 0,
                mirrors_accepted: 0,
                mirror_candidates: 0,
                mirror_rate: 0.0,
                // Same convention as RoutedCircuit::log_success: readout at
                // the logical qubits' final homes.
                estimated_success: target
                    .estimated_success(&placed, final_layout.real_assignment()),
            };
            return Ok(TranspiledCircuit {
                circuit: placed,
                initial_layout: layout,
                final_layout,
                metrics,
                used_vf2: true,
            });
        }
    }

    let mut routed: RoutedCircuit = engine.run(opts.router.uses_mirrors(), &opts.trials)?;

    // Compose the SWAP-elision relabeling into the final layout: original
    // output wire `w` lives on elided wire `wire_perm[w]`, which routing
    // placed at `final_layout.phys(wire_perm[w])`.
    let adjusted: Vec<usize> = (0..circuit.n_qubits)
        .map(|w| routed.final_layout.phys(wire_perm[w]))
        .collect();
    routed.final_layout = Layout::from_assignment(&adjusted, topo.n_qubits());

    let metrics = Metrics {
        depth_estimate: target.depth_estimate(&routed.circuit),
        total_gate_cost: target.total_gate_cost(&routed.circuit),
        two_qubit_gates: routed.circuit.two_qubit_gate_count(),
        swaps_inserted: routed.swaps_inserted,
        mirrors_accepted: routed.mirrors_accepted,
        mirror_candidates: routed.mirror_candidates,
        mirror_rate: routed.mirror_rate(),
        estimated_success: routed.estimated_success(target),
    };
    Ok(TranspiledCircuit {
        circuit: routed.circuit,
        initial_layout: routed.initial_layout,
        final_layout: routed.final_layout,
        metrics,
        used_vf2: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_routed;
    use mirage_circuit::generators::{ghz, qft, two_local_full};
    use mirage_topology::CouplingMap;

    #[test]
    fn vf2_skips_routing_for_linear_circuits() {
        let c = ghz(5);
        let target = Target::sqrt_iswap(CouplingMap::grid(3, 3));
        let out = transpile(&c, &target, &TranspileOptions::quick(RouterKind::Sabre, 1)).unwrap();
        assert!(out.used_vf2, "GHZ embeds into a grid without SWAPs");
        assert_eq!(out.metrics.swaps_inserted, 0);
    }

    #[test]
    fn full_entanglement_requires_routing() {
        let c = two_local_full(4, 1, 7);
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let out = transpile(&c, &target, &TranspileOptions::quick(RouterKind::Mirage, 2)).unwrap();
        assert!(!out.used_vf2);
        assert!(verify_routed(&c, &out.as_routed(), &target));
    }

    #[test]
    fn mirage_beats_or_ties_sabre_on_depth() {
        let c = qft(6, false);
        let target = Target::sqrt_iswap(CouplingMap::line(6));
        let sabre = transpile(&c, &target, &TranspileOptions::quick(RouterKind::Sabre, 3)).unwrap();
        let mirage =
            transpile(&c, &target, &TranspileOptions::quick(RouterKind::Mirage, 3)).unwrap();
        assert!(
            mirage.metrics.depth_estimate <= sabre.metrics.depth_estimate * 1.05 + 1e-9,
            "mirage {:.2} vs sabre {:.2}",
            mirage.metrics.depth_estimate,
            sabre.metrics.depth_estimate
        );
    }

    #[test]
    fn too_large_circuit_errors() {
        let c = ghz(5);
        let target = Target::sqrt_iswap(CouplingMap::line(3));
        let e = transpile(&c, &target, &TranspileOptions::quick(RouterKind::Sabre, 4)).unwrap_err();
        assert!(matches!(e, TranspileError::CircuitTooLarge { .. }));
    }

    #[test]
    fn disconnected_topology_errors() {
        let c = ghz(3);
        let target = Target::sqrt_iswap(CouplingMap::from_edges(4, &[(0, 1), (2, 3)], "broken"));
        let e = transpile(&c, &target, &TranspileOptions::quick(RouterKind::Sabre, 5)).unwrap_err();
        assert_eq!(e, TranspileError::DisconnectedTopology);
    }

    #[test]
    fn metrics_populated() {
        let c = two_local_full(4, 1, 8);
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let out = transpile(&c, &target, &TranspileOptions::quick(RouterKind::Mirage, 6)).unwrap();
        assert!(out.metrics.depth_estimate > 0.0);
        assert!(out.metrics.total_gate_cost >= out.metrics.depth_estimate);
        assert!(out.metrics.two_qubit_gates >= 6);
    }

    #[test]
    fn metric_derived_from_router_kind() {
        // The post-selection metric lives in one place: RouterKind::metric.
        assert_eq!(RouterKind::Mirage.metric(), Metric::Depth);
        assert_eq!(RouterKind::MirageSwaps.metric(), Metric::SwapCount);
        assert_eq!(RouterKind::Sabre.metric(), Metric::SwapCount);
        for kind in [
            RouterKind::Sabre,
            RouterKind::MirageSwaps,
            RouterKind::Mirage,
        ] {
            assert_eq!(
                TranspileOptions::quick(kind, 1).trials.metric,
                kind.metric()
            );
            assert_eq!(
                TranspileOptions::paper(kind, 1).trials.metric,
                kind.metric()
            );
        }
        assert!(!RouterKind::Sabre.uses_mirrors());
        assert!(RouterKind::MirageSwaps.uses_mirrors());
        assert!(RouterKind::Mirage.uses_mirrors());
    }

    #[test]
    fn shared_cache_is_hit_across_metric_computations() {
        // One Target = one cost cache for the whole transpile call. Routing
        // prices every mirror decision and the metric computations re-price
        // the very same coordinate classes, so by the end the cache must
        // have served more hits than misses — the seed's fresh per-branch
        // `CostCache::new(...)` could never see these hits. (Repeat queries
        // within one router scratch are absorbed by its `CostMemo` and never
        // reach the shared cache, so the ratio here reflects *cross-trial*
        // and metric-side reuse, not raw mirror-decision traffic.)
        let c = qft(5, false);
        let target = Target::sqrt_iswap(CouplingMap::line(5));
        let mut opts = TranspileOptions::quick(RouterKind::Mirage, 11);
        opts.use_vf2 = false;
        let _ = transpile(&c, &target, &opts).unwrap();
        let (hits, misses) = target.cache_stats();
        assert!(
            hits > 0,
            "metric computations must hit the routing-era cache"
        );
        assert!(
            hits > misses,
            "a QFT has a handful of coordinate classes: {hits} hits vs {misses} misses"
        );
        // A second transpile on the same target starts warm: miss count
        // stays flat because every class is already priced.
        let _ = transpile(&c, &target, &opts).unwrap();
        let (_, misses_after) = target.cache_stats();
        assert_eq!(misses, misses_after, "second run must be fully warm");
    }

    #[test]
    fn cnot_target_transpiles_qft_on_line() {
        // Acceptance scenario: the same public API serves a CNOT-basis
        // device end-to-end.
        let c = qft(6, false);
        let target = Target::cnot(CouplingMap::line(6));
        let out = transpile(
            &c,
            &target,
            &TranspileOptions::quick(RouterKind::Mirage, 13),
        )
        .unwrap();
        assert!(out.metrics.depth_estimate > 0.0);
        assert!(verify_routed(&c, &out.as_routed(), &target));
    }

    #[test]
    fn swap_elision_layout_roundtrip() {
        // A circuit with explicit SWAPs: the cleaner elides them into a
        // wire relabeling, so the routed output contains none of them and
        // the final layout must absorb the permutation. The round-trip
        // check is `verify_routed` against the adjusted final layout.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).swap(1, 2).cx(2, 3).swap(0, 3).cx(1, 2);
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        for router in [RouterKind::Sabre, RouterKind::Mirage] {
            let mut opts = TranspileOptions::quick(router, 21);
            opts.use_vf2 = false;
            let out = transpile(&c, &target, &opts).unwrap();
            assert!(
                verify_routed(&c, &out.as_routed(), &target),
                "{router:?} lost the elided-SWAP permutation"
            );
        }
        // And through the VF2 path, where the embedding layout composes
        // with the elision permutation instead of a routing layout.
        let out = transpile(&c, &target, &TranspileOptions::quick(RouterKind::Sabre, 22)).unwrap();
        assert!(verify_routed(&c, &out.as_routed(), &target));
    }

    #[test]
    fn estimated_success_selectable_end_to_end() {
        use crate::calibration::Calibration;
        use crate::trials::Metric;
        use mirage_math::Rng;

        let topo = CouplingMap::line(5);
        let cal = Calibration::synthetic(&topo, &mut Rng::new(0xACC));
        let target = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
        let c = two_local_full(5, 1, 9);
        let opts =
            TranspileOptions::quick(RouterKind::Mirage, 7).with_metric(Metric::EstimatedSuccess);
        assert_eq!(opts.trials.metric, Metric::EstimatedSuccess);
        let out = transpile(&c, &target, &opts).unwrap();
        assert!(verify_routed(&c, &out.as_routed(), &target));
        assert!(
            out.metrics.estimated_success > 0.0 && out.metrics.estimated_success < 1.0,
            "noisy device: 0 < {} < 1",
            out.metrics.estimated_success
        );
    }

    #[test]
    fn uncalibrated_target_reports_certain_success() {
        // Zero-error (uniform) calibration: the success estimate must be
        // exactly 1 through both the VF2 and the routed path.
        let target = Target::sqrt_iswap(CouplingMap::grid(3, 3));
        let vf2 = transpile(
            &ghz(5),
            &target,
            &TranspileOptions::quick(RouterKind::Sabre, 1),
        )
        .unwrap();
        assert!(vf2.used_vf2);
        assert_eq!(vf2.metrics.estimated_success, 1.0);
        let routed = transpile(
            &two_local_full(6, 1, 17),
            &target,
            &TranspileOptions::quick(RouterKind::Mirage, 2),
        )
        .unwrap();
        assert!(!routed.used_vf2);
        assert_eq!(routed.metrics.estimated_success, 1.0);
    }

    #[test]
    fn error_display() {
        let e = TranspileError::CircuitTooLarge {
            circuit: 9,
            device: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(TranspileError::DisconnectedTopology
            .to_string()
            .contains("disconnected"));
    }
}
