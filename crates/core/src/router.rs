//! The routing engine: SABRE with MIRAGE's intermediate layer.
//!
//! One code path serves both transpilers. With `aggression = None` the
//! engine is a faithful SABRE: front layer + lookahead window + decay,
//! inserting SWAPs until every two-qubit gate sits on a coupled pair. With
//! an aggression level set, every two-qubit gate passing from the execute
//! layer to the mapped layer goes through the **intermediate layer**
//! (paper Fig. 7): the engine compares the cost of the gate against its
//! mirror `SWAP·U` — decomposition cost from the coverage set plus the
//! lookahead distance heuristic — and accepts the mirror per Algorithm 2.

use crate::layout::Layout;
use crate::target::Target;
use mirage_circuit::{Circuit, Dag, Gate};
use mirage_math::{Mat4, Rng};
use mirage_topology::CouplingMap;
use mirage_weyl::coords::{coords_of, WeylCoord};
use mirage_weyl::mirror::mirror_coord;

/// Mirror-acceptance aggression levels (paper Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggression {
    /// Never accept a mirror.
    A0,
    /// Accept when the mirror strictly lowers the cost.
    A1,
    /// Accept when the mirror lowers or maintains the cost.
    A2,
    /// Always accept.
    A3,
}

impl Aggression {
    /// Algorithm 2: should the mirror be accepted?
    pub fn accept(self, cost_current: f64, cost_trial: f64) -> bool {
        const EPS: f64 = 1e-9;
        match self {
            Aggression::A0 => false,
            Aggression::A1 => cost_trial < cost_current - EPS,
            Aggression::A2 => cost_trial <= cost_current + EPS,
            Aggression::A3 => true,
        }
    }
}

/// Hyper-parameters of the routing engine (defaults follow the paper's
/// stated SABRE configuration: `|E| = 20`, `W_E = 0.5`, decay 0.001 with a
/// reset every five steps or gate mapping).
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Lookahead window size `|E|`.
    pub extended_set_size: usize,
    /// Lookahead weight `W_E`.
    pub extended_set_weight: f64,
    /// Decay increment per SWAP on a qubit.
    pub decay_rate: f64,
    /// Reset decay after this many consecutive SWAPs.
    pub decay_reset: usize,
    /// Mirror aggression; `None` = plain SABRE (no intermediate layer).
    pub aggression: Option<Aggression>,
    /// Lookahead window size for the mirror decision (deeper than the swap
    /// ranker's window; see `tune_mirror`).
    pub mirror_lookahead: usize,
    /// Weight coupling the distance heuristic into the mirror decision
    /// (decomposition cost is in duration units, distance in hops). The
    /// shipped default (2.0) comes from the `tune_mirror` ablation: depth
    /// and SWAP reductions saturate at λ ≈ 2 across the benchmark suite.
    pub mirror_heuristic_weight: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_rate: 0.001,
            decay_reset: 5,
            aggression: None,
            mirror_lookahead: 40,
            mirror_heuristic_weight: 2.0,
        }
    }
}

/// Output of one routing run.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The routed circuit on *physical* qubits (`topo.n_qubits()` wide).
    pub circuit: Circuit,
    /// Layout at circuit start.
    pub initial_layout: Layout,
    /// Layout at circuit end (routing and mirrors permute qubits).
    pub final_layout: Layout,
    /// SWAP gates inserted.
    pub swaps_inserted: usize,
    /// Mirror gates accepted (MIRAGE only).
    pub mirrors_accepted: usize,
    /// Two-qubit gates that went through the intermediate layer.
    pub mirror_candidates: usize,
}

impl RoutedCircuit {
    /// Mirror acceptance rate in `[0, 1]`.
    pub fn mirror_rate(&self) -> f64 {
        if self.mirror_candidates == 0 {
            0.0
        } else {
            self.mirrors_accepted as f64 / self.mirror_candidates as f64
        }
    }

    /// Natural log of the estimated success probability under the target's
    /// calibration: per-application edge errors over every routed gate plus
    /// readout errors on the final physical homes of the logical qubits
    /// (`final_layout.assignment()`). This is the quantity
    /// [`crate::trials::Metric::EstimatedSuccess`] post-selects on (higher
    /// is better).
    pub fn log_success(&self, target: &Target) -> f64 {
        target.circuit_log_success(&self.circuit)
            + target.readout_log_success(&self.final_layout.assignment())
    }

    /// `exp` of [`RoutedCircuit::log_success`]: the estimated probability
    /// that the whole routed circuit, including readout, succeeds.
    pub fn estimated_success(&self, target: &Target) -> f64 {
        self.log_success(target).exp()
    }
}

/// Pre-computed per-node canonical coordinates for the two-qubit nodes of a
/// DAG (1Q nodes get `None`).
pub fn node_coords(dag: &Dag) -> Vec<Option<WeylCoord>> {
    dag.nodes
        .iter()
        .map(|n| {
            if n.gate.is_two_qubit() {
                Some(coords_of(&n.gate.matrix2()))
            } else {
                None
            }
        })
        .collect()
}

/// Route a circuit DAG onto `target` starting from `layout`.
///
/// The target prices decomposition costs for the mirror decision through
/// its shared cost cache. `rng` only breaks score ties, so two runs with
/// equal seeds are identical.
pub fn route(
    dag: &Dag,
    coords: &[Option<WeylCoord>],
    target: &Target,
    layout: Layout,
    config: &RouterConfig,
    rng: &mut Rng,
) -> RoutedCircuit {
    let topo = target.topology();
    let n_phys = topo.n_qubits();
    assert!(dag.n_qubits <= n_phys, "circuit larger than device");
    let initial_layout = layout.clone();
    let mut layout = layout;
    let mut out = Circuit::new(n_phys);

    let mut indeg = dag.indegrees();
    let mut front: Vec<usize> = dag.front_layer();
    let mut done = vec![false; dag.len()];
    let mut decay = vec![1.0f64; n_phys];
    let mut swaps_since_reset = 0usize;
    let mut swaps_inserted = 0usize;
    let mut mirrors_accepted = 0usize;
    let mut mirror_candidates = 0usize;
    let mut stall_swaps = 0usize;

    // Upper bound to catch non-termination bugs early (generously above any
    // legitimate routing length).
    let swap_budget = 64 + 16 * n_phys * dag.len().max(1);

    while !front.is_empty() {
        // --- Execute layer: run everything executable. ---
        let mut executed_any = false;
        let mut i = 0;
        while i < front.len() {
            let id = front[i];
            let node = &dag.nodes[id];
            let executable = match node.qubits.len() {
                1 => true,
                2 => {
                    let p1 = layout.phys(node.qubits[0]);
                    let p2 = layout.phys(node.qubits[1]);
                    topo.are_adjacent(p1, p2)
                }
                _ => unreachable!(),
            };
            if !executable {
                i += 1;
                continue;
            }
            front.swap_remove(i);
            done[id] = true;

            match node.qubits.len() {
                1 => {
                    out.push(node.gate.clone(), &[layout.phys(node.qubits[0])]);
                }
                2 => {
                    let (l1, l2) = (node.qubits[0], node.qubits[1]);
                    let (p1, p2) = (layout.phys(l1), layout.phys(l2));
                    let mut accepted = false;
                    if let Some(aggr) = config.aggression {
                        mirror_candidates += 1;
                        let w = coords[id].expect("2Q node has coords");
                        let wm = mirror_coord(&w);
                        // Price both options on the edge the gate executes
                        // on: a calibrated slow coupler scales dc and dcm
                        // alike, which amplifies their *difference* against
                        // the hop-denominated routing term — on expensive
                        // edges the decomposition delta dominates, exactly
                        // the effect the calibration-skew experiment sweeps.
                        let dc = target.gate_cost_on(&w, p1, p2);
                        let dcm = target.gate_cost_on(&wm, p1, p2);

                        // Lookahead impact: heuristic over the *remaining*
                        // front and extended set under both mappings.
                        let mut probe = front.clone();
                        release_successors(dag, id, &indeg, &mut probe, &done, node);
                        // The mirror decision looks deeper than the swap
                        // ranker: mirrors are rarer, higher-stakes moves.
                        let ext = extended_set(dag, &probe, &indeg, &done, config.mirror_lookahead);
                        // The mirror decision uses *summed* distances, not
                        // the swap-ranking average: the decomposition-cost
                        // delta is an absolute duration, so the routing term
                        // must be absolute too (an averaged term would be
                        // diluted by the front size and mirrors would almost
                        // never out-bid the ±half-pulse cost delta).
                        let h_plain = lookahead_sum(&probe, &ext, dag, &layout, topo, config);
                        let mut mirrored = layout.clone();
                        mirrored.swap_physical(p1, p2);
                        let h_mirror = lookahead_sum(&probe, &ext, dag, &mirrored, topo, config);

                        let lambda = config.mirror_heuristic_weight;
                        let cost_current = dc + lambda * h_plain;
                        let cost_trial = dcm + lambda * h_mirror;
                        if aggr.accept(cost_current, cost_trial) {
                            accepted = true;
                            mirrors_accepted += 1;
                            let u = node.gate.matrix2();
                            out.push(Gate::Unitary2(Mat4::swap().mul(&u)), &[p1, p2]);
                            layout.swap_physical(p1, p2);
                        }
                    }
                    if !accepted {
                        out.push(node.gate.clone(), &[p1, p2]);
                    }
                }
                _ => unreachable!(),
            }

            // Release successors into the front layer.
            for &s in &dag.nodes[id].succs {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    front.push(s);
                }
            }
            executed_any = true;
            // "Reset after every five steps or gate mapping."
            decay.iter_mut().for_each(|d| *d = 1.0);
            swaps_since_reset = 0;
            stall_swaps = 0;
            i = 0; // restart scan: new nodes may be executable
        }
        if front.is_empty() {
            break;
        }
        if executed_any {
            continue;
        }

        // --- SWAP insertion: no gate is executable. ---
        assert!(
            swaps_inserted < swap_budget,
            "routing exceeded its swap budget — probable non-termination"
        );

        let ext = extended_set(dag, &front, &indeg, &done, config.extended_set_size);
        let candidates = candidate_swaps(dag, &front, &layout, topo);
        debug_assert!(
            !candidates.is_empty(),
            "connected topology yields candidates"
        );

        let mut best: Vec<(usize, usize)> = Vec::new();
        let mut best_score = f64::INFINITY;
        for &(p1, p2) in &candidates {
            let mut trial = layout.clone();
            trial.swap_physical(p1, p2);
            let h = heuristic(&front, &ext, dag, &trial, topo, config);
            let score = h * decay[p1].max(decay[p2]);
            if score < best_score - 1e-12 {
                best_score = score;
                best.clear();
                best.push((p1, p2));
            } else if (score - best_score).abs() <= 1e-12 {
                best.push((p1, p2));
            }
        }
        let &(p1, p2) = rng.choose(&best);

        // Anti-livelock: after long swap droughts, force progress along the
        // shortest path of the first front gate.
        stall_swaps += 1;
        let (p1, p2) = if stall_swaps > 8 * n_phys + 32 {
            force_step(dag, &front, &layout, topo)
        } else {
            (p1, p2)
        };

        out.push(Gate::Swap, &[p1, p2]);
        layout.swap_physical(p1, p2);
        swaps_inserted += 1;
        decay[p1] += config.decay_rate;
        decay[p2] += config.decay_rate;
        swaps_since_reset += 1;
        if swaps_since_reset >= config.decay_reset {
            decay.iter_mut().for_each(|d| *d = 1.0);
            swaps_since_reset = 0;
        }
    }

    RoutedCircuit {
        circuit: out,
        initial_layout,
        final_layout: layout,
        swaps_inserted,
        mirrors_accepted,
        mirror_candidates,
    }
}

/// Peephole "mirage SWAP" absorption (paper §I: a SWAP absorbed into an
/// adjacent computational gate during decomposition). Whenever an explicit
/// SWAP on `(p,q)` immediately precedes or follows a two-qubit gate on the
/// same pair (no intervening gate touching `p` or `q`), the pair fuses into
/// one mirror block `SWAP·U` (resp. `U·SWAP`). In the √iSWAP basis this is
/// always a win: any fused block costs at most 3 applications while the
/// separate pair costs at least 1 + 3.
///
/// Returns the rewritten circuit and the number of SWAPs absorbed. The
/// rewrite is local — wire semantics are unchanged, so layouts need no
/// adjustment.
pub fn absorb_adjacent_swaps(c: &Circuit) -> (Circuit, usize) {
    let mut instrs: Vec<Option<mirage_circuit::Instruction>> =
        c.instructions.iter().cloned().map(Some).collect();
    let mut fused = 0usize;
    loop {
        let mut changed = false;
        // last_touch[q] = index of the latest live instruction on q.
        let mut last_touch: Vec<Option<usize>> = vec![None; c.n_qubits];
        for i in 0..instrs.len() {
            let Some(instr) = instrs[i].clone() else {
                continue;
            };
            if matches!(instr.gate, Gate::Swap) {
                let (p, q) = (instr.qubits[0], instr.qubits[1]);
                if let (Some(a), Some(b)) = (last_touch[p], last_touch[q]) {
                    if a == b {
                        if let Some(prev) = instrs[a].clone() {
                            if prev.gate.is_two_qubit() {
                                let same_pair = (prev.qubits[0] == p && prev.qubits[1] == q)
                                    || (prev.qubits[0] == q && prev.qubits[1] == p);
                                if same_pair {
                                    // Fuse: U then SWAP = SWAP·U as a matrix
                                    // on prev's operand order (SWAP is
                                    // order-symmetric).
                                    let u = prev.gate.matrix2();
                                    instrs[a] = Some(mirage_circuit::Instruction {
                                        gate: Gate::Unitary2(Mat4::swap().mul(&u)),
                                        qubits: prev.qubits.clone(),
                                    });
                                    instrs[i] = None;
                                    fused += 1;
                                    changed = true;
                                    // a stays the last touch of p and q.
                                    continue;
                                }
                            }
                        }
                    }
                }
            }
            for &qb in &instr.qubits {
                last_touch[qb] = Some(i);
            }
        }
        if !changed {
            break;
        }
    }
    let out = Circuit {
        n_qubits: c.n_qubits,
        instructions: instrs.into_iter().flatten().collect(),
    };
    (out, fused)
}

/// Pretend `id` completed: extend `probe` with its newly released 2Q
/// successors (used to score the post-execution front during the mirror
/// decision).
fn release_successors(
    dag: &Dag,
    id: usize,
    indeg: &[usize],
    probe: &mut Vec<usize>,
    done: &[bool],
    node: &mirage_circuit::dag::DagNode,
) {
    let _ = node;
    for &s in &dag.nodes[id].succs {
        // `id` still counts toward the successor's in-degree at this point,
        // so "released by id" means exactly one remaining predecessor.
        if !done[s] && indeg[s] == 1 {
            probe.push(s);
        }
    }
}

/// The lookahead window: up to `limit` unexecuted two-qubit descendants of
/// the front layer, breadth-first.
fn extended_set(
    dag: &Dag,
    front: &[usize],
    indeg: &[usize],
    done: &[bool],
    limit: usize,
) -> Vec<usize> {
    let _ = indeg;
    let mut out = Vec::with_capacity(limit);
    let mut queue: std::collections::VecDeque<usize> = front.iter().copied().collect();
    let mut seen: std::collections::HashSet<usize> = front.iter().copied().collect();
    while let Some(id) = queue.pop_front() {
        if out.len() >= limit {
            break;
        }
        for &s in &dag.nodes[id].succs {
            if seen.insert(s) && !done[s] {
                if dag.nodes[s].qubits.len() == 2 {
                    out.push(s);
                    if out.len() >= limit {
                        break;
                    }
                }
                queue.push_back(s);
            }
        }
    }
    out
}

/// The SABRE distance heuristic over front and extended sets.
fn heuristic(
    front: &[usize],
    ext: &[usize],
    dag: &Dag,
    layout: &Layout,
    topo: &CouplingMap,
    config: &RouterConfig,
) -> f64 {
    let dist = |id: usize| -> f64 {
        let n = &dag.nodes[id];
        if n.qubits.len() != 2 {
            return 0.0;
        }
        let p1 = layout.phys(n.qubits[0]);
        let p2 = layout.phys(n.qubits[1]);
        f64::from(topo.distance(p1, p2).saturating_sub(1))
    };
    let front_2q: Vec<usize> = front
        .iter()
        .copied()
        .filter(|&id| dag.nodes[id].qubits.len() == 2)
        .collect();
    let f_term = if front_2q.is_empty() {
        0.0
    } else {
        front_2q.iter().map(|&id| dist(id)).sum::<f64>() / front_2q.len() as f64
    };
    let e_term = if ext.is_empty() {
        0.0
    } else {
        ext.iter().map(|&id| dist(id)).sum::<f64>() / ext.len() as f64
    };
    f_term + config.extended_set_weight * e_term
}

/// Absolute lookahead score for the mirror decision: *summed* residual
/// distances (hops beyond adjacency) over the front layer plus the weighted
/// extended set. Unlike [`heuristic`] this is not normalized, so its delta
/// under a mirror is commensurable with decomposition-cost deltas.
fn lookahead_sum(
    front: &[usize],
    ext: &[usize],
    dag: &Dag,
    layout: &Layout,
    topo: &CouplingMap,
    config: &RouterConfig,
) -> f64 {
    let dist = |id: usize| -> f64 {
        let n = &dag.nodes[id];
        if n.qubits.len() != 2 {
            return 0.0;
        }
        let p1 = layout.phys(n.qubits[0]);
        let p2 = layout.phys(n.qubits[1]);
        f64::from(topo.distance(p1, p2).saturating_sub(1))
    };
    let f_term: f64 = front.iter().map(|&id| dist(id)).sum();
    let e_term: f64 = ext.iter().map(|&id| dist(id)).sum();
    f_term + config.extended_set_weight * e_term
}

/// Candidate SWAPs: coupling edges incident to the physical home of any
/// front-layer two-qubit operand.
fn candidate_swaps(
    dag: &Dag,
    front: &[usize],
    layout: &Layout,
    topo: &CouplingMap,
) -> Vec<(usize, usize)> {
    let mut homes: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for &id in front {
        let n = &dag.nodes[id];
        if n.qubits.len() == 2 {
            homes.insert(layout.phys(n.qubits[0]));
            homes.insert(layout.phys(n.qubits[1]));
        }
    }
    let mut out: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    for &p in &homes {
        for &q in topo.neighbors(p) {
            out.insert((p.min(q), p.max(q)));
        }
    }
    out.into_iter().collect()
}

/// Deterministic progress step: the first SWAP along the shortest path
/// between the operands of the first front-layer 2Q gate.
fn force_step(dag: &Dag, front: &[usize], layout: &Layout, topo: &CouplingMap) -> (usize, usize) {
    let id = front
        .iter()
        .copied()
        .find(|&id| dag.nodes[id].qubits.len() == 2)
        .expect("stalled front contains a 2Q gate");
    let n = &dag.nodes[id];
    let src = layout.phys(n.qubits[0]);
    let dst = layout.phys(n.qubits[1]);
    // First hop of a BFS shortest path from src toward dst.
    let next = topo
        .neighbors(src)
        .iter()
        .copied()
        .min_by_key(|&nb| topo.distance(nb, dst))
        .expect("connected topology");
    (src.min(next), src.max(next))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_routed;
    use mirage_circuit::consolidate::consolidate;
    use mirage_circuit::generators::{ghz, two_local_full};

    fn target(topo: CouplingMap) -> Target {
        Target::sqrt_iswap(topo)
    }

    fn route_simple(
        c: &Circuit,
        target: &Target,
        aggression: Option<Aggression>,
        seed: u64,
    ) -> RoutedCircuit {
        let cc = consolidate(c);
        let dag = Dag::from_circuit(&cc);
        let coords = node_coords(&dag);
        let config = RouterConfig {
            aggression,
            ..RouterConfig::default()
        };
        let mut rng = Rng::new(seed);
        route(
            &dag,
            &coords,
            target,
            Layout::trivial(c.n_qubits, target.n_qubits()),
            &config,
            &mut rng,
        )
    }

    #[test]
    fn already_routable_needs_no_swaps() {
        let t = target(CouplingMap::line(3));
        let c = ghz(3);
        let r = route_simple(&c, &t, None, 1);
        assert_eq!(r.swaps_inserted, 0);
        assert!(verify_routed(&c, &r, &t));
    }

    #[test]
    fn sabre_inserts_swaps_on_line() {
        let t = target(CouplingMap::line(4));
        let c = two_local_full(4, 1, 7);
        let r = route_simple(&c, &t, None, 2);
        assert!(r.swaps_inserted > 0, "full entanglement on a line swaps");
        assert_eq!(r.mirrors_accepted, 0);
        // Every 2Q gate must land on a coupled pair.
        for instr in &r.circuit.instructions {
            if instr.gate.is_two_qubit() {
                assert!(t.topology().are_adjacent(instr.qubits[0], instr.qubits[1]));
            }
        }
        assert!(verify_routed(&c, &r, &t));
    }

    #[test]
    fn mirage_preserves_semantics() {
        let t = target(CouplingMap::line(4));
        let c = two_local_full(4, 1, 7);
        for (seed, aggr) in [
            (3, Aggression::A1),
            (4, Aggression::A2),
            (5, Aggression::A3),
        ] {
            let r = route_simple(&c, &t, Some(aggr), seed);
            assert!(
                verify_routed(&c, &r, &t),
                "aggression {aggr:?} broke semantics"
            );
        }
    }

    #[test]
    fn mirage_a0_equals_sabre() {
        let t = target(CouplingMap::line(4));
        let c = two_local_full(4, 1, 9);
        let a0 = route_simple(&c, &t, Some(Aggression::A0), 6);
        let sabre = route_simple(&c, &t, None, 6);
        assert_eq!(a0.swaps_inserted, sabre.swaps_inserted);
        assert_eq!(a0.mirrors_accepted, 0);
        assert_eq!(a0.circuit, sabre.circuit);
    }

    #[test]
    fn mirage_accepts_mirrors_on_constrained_topology() {
        let t = target(CouplingMap::line(4));
        let c = two_local_full(4, 2, 11);
        let r = route_simple(&c, &t, Some(Aggression::A2), 7);
        assert!(
            r.mirrors_accepted > 0,
            "expected mirror acceptances, got 0 of {}",
            r.mirror_candidates
        );
        assert!(verify_routed(&c, &r, &t));
    }

    #[test]
    fn mirrors_reduce_swaps_or_depth() {
        let t = target(CouplingMap::line(5));
        let c = two_local_full(5, 2, 13);
        let sabre = route_simple(&c, &t, None, 8);
        let mirage = route_simple(&c, &t, Some(Aggression::A1), 8);
        assert!(
            mirage.swaps_inserted <= sabre.swaps_inserted,
            "mirage {} vs sabre {}",
            mirage.swaps_inserted,
            sabre.swaps_inserted
        );
    }

    #[test]
    fn routing_on_grid() {
        let t = target(CouplingMap::grid(3, 3));
        let c = two_local_full(6, 1, 17);
        let r = route_simple(&c, &t, Some(Aggression::A2), 9);
        for instr in &r.circuit.instructions {
            if instr.gate.is_two_qubit() {
                assert!(t.topology().are_adjacent(instr.qubits[0], instr.qubits[1]));
            }
        }
        assert!(verify_routed(&c, &r, &t));
    }

    #[test]
    fn aggression_accept_semantics() {
        assert!(!Aggression::A0.accept(1.0, 0.0));
        assert!(Aggression::A1.accept(1.0, 0.5));
        assert!(!Aggression::A1.accept(1.0, 1.0));
        assert!(Aggression::A2.accept(1.0, 1.0));
        assert!(!Aggression::A2.accept(1.0, 1.5));
        assert!(Aggression::A3.accept(0.0, 99.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let t = target(CouplingMap::line(5));
        let c = two_local_full(5, 1, 21);
        let a = route_simple(&c, &t, Some(Aggression::A2), 10);
        let b = route_simple(&c, &t, Some(Aggression::A2), 10);
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.swaps_inserted, b.swaps_inserted);
    }

    #[test]
    fn routing_in_cnot_basis() {
        // The mirror decision prices gates in whatever basis the target
        // declares — a CNOT-basis device must still route correctly.
        let t = Target::cnot(CouplingMap::line(4));
        let c = two_local_full(4, 1, 19);
        for aggr in [None, Some(Aggression::A2)] {
            let r = route_simple(&c, &t, aggr, 12);
            assert!(
                verify_routed(&c, &r, &t),
                "{aggr:?} broke CNOT-basis routing"
            );
        }
    }

    #[test]
    fn random_initial_layout_verifies() {
        let t = target(CouplingMap::grid(3, 3));
        let c = ghz(5);
        let cc = consolidate(&c);
        let dag = Dag::from_circuit(&cc);
        let coords = node_coords(&dag);
        let mut rng = Rng::new(33);
        let layout = Layout::random(c.n_qubits, t.n_qubits(), &mut rng);
        let r = route(
            &dag,
            &coords,
            &t,
            layout,
            &RouterConfig {
                aggression: Some(Aggression::A2),
                ..RouterConfig::default()
            },
            &mut rng,
        );
        assert!(verify_routed(&c, &r, &t));
    }
}
