//! The routing engine: SABRE with MIRAGE's intermediate layer.
//!
//! One code path serves both transpilers. With `aggression = None` the
//! engine is a faithful SABRE: front layer + lookahead window + decay,
//! inserting SWAPs until every two-qubit gate sits on a coupled pair. With
//! an aggression level set, every two-qubit gate passing from the execute
//! layer to the mapped layer goes through the **intermediate layer**
//! (paper Fig. 7): the engine compares the cost of the gate against its
//! mirror `SWAP·U` — decomposition cost from the coverage set plus the
//! lookahead distance heuristic — and accepts the mirror per Algorithm 2.
//!
//! # The hot path
//!
//! [`route`] is the hottest loop in the workspace: it runs once per SWAP
//! step × per routing trial × per serve job. The steady-state path is
//! **allocation-free** and **incrementally scored**:
//!
//! * All working storage lives in a reusable [`RouterScratch`]
//!   (epoch-stamped mark arrays, front/extended-set/candidate buffers,
//!   decay table). [`route_with_scratch`] threads one through repeated
//!   calls — [`crate::trials::TrialEngine`] pools scratches so refinement
//!   passes, routing trials, and serve jobs stop paying per-call
//!   allocation. [`route`] is the convenience wrapper that brings its own.
//! * Candidate SWAPs are ranked by **delta scoring**: the per-node
//!   residual distances of the front and extended sets are computed once
//!   per SWAP step, and each candidate re-prices only the nodes whose
//!   operands sit on the two swapped physical qubits (an inverted
//!   phys→node index built per step). The mirror decision's two lookahead
//!   sums collapse into one pass the same way — no `Layout` clone, no
//!   front clone, no second walk.
//! * The 2Q-only front view is maintained incrementally as gates execute
//!   instead of being re-filtered per candidate.
//!
//! Outputs are **bit-identical** to the pre-optimization router (kept
//! verbatim as a test-only `legacy` fixture): residual distances are small
//! integers, so front/extended sums are exact in `f64` regardless of
//! summation order, and the final score expressions reproduce the original
//! floating-point operations operation-for-operation. The golden tests
//! (`tests/golden_routing.rs`) and a randomized `route == legacy::route`
//! sweep pin this.

use crate::layout::Layout;
use crate::target::Target;
use mirage_circuit::{Circuit, Dag, Gate, Instruction};
use mirage_coverage::cache::CostMemo;
use mirage_math::{Mat4, Rng};
use mirage_topology::CouplingMap;
use mirage_weyl::coords::{coords_of, WeylCoord};
use mirage_weyl::mirror::mirror_coord;
use std::collections::VecDeque;

/// Mirror-acceptance aggression levels (paper Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggression {
    /// Never accept a mirror.
    A0,
    /// Accept when the mirror strictly lowers the cost.
    A1,
    /// Accept when the mirror lowers or maintains the cost.
    A2,
    /// Always accept.
    A3,
}

impl Aggression {
    /// Algorithm 2: should the mirror be accepted?
    pub fn accept(self, cost_current: f64, cost_trial: f64) -> bool {
        const EPS: f64 = 1e-9;
        match self {
            Aggression::A0 => false,
            Aggression::A1 => cost_trial < cost_current - EPS,
            Aggression::A2 => cost_trial <= cost_current + EPS,
            Aggression::A3 => true,
        }
    }
}

/// Hyper-parameters of the routing engine (defaults follow the paper's
/// stated SABRE configuration: `|E| = 20`, `W_E = 0.5`, decay 0.001 with a
/// reset every five steps or gate mapping).
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Lookahead window size `|E|`.
    pub extended_set_size: usize,
    /// Lookahead weight `W_E`.
    pub extended_set_weight: f64,
    /// Decay increment per SWAP on a qubit.
    pub decay_rate: f64,
    /// Reset decay after this many consecutive SWAPs.
    pub decay_reset: usize,
    /// Mirror aggression; `None` = plain SABRE (no intermediate layer).
    pub aggression: Option<Aggression>,
    /// Lookahead window size for the mirror decision (deeper than the swap
    /// ranker's window; see `tune_mirror`).
    pub mirror_lookahead: usize,
    /// Weight coupling the distance heuristic into the mirror decision
    /// (decomposition cost is in duration units, distance in hops). The
    /// shipped default (2.0) comes from the `tune_mirror` ablation: depth
    /// and SWAP reductions saturate at λ ≈ 2 across the benchmark suite.
    pub mirror_heuristic_weight: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_rate: 0.001,
            decay_reset: 5,
            aggression: None,
            mirror_lookahead: 40,
            mirror_heuristic_weight: 2.0,
        }
    }
}

/// Output of one routing run.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The routed circuit on *physical* qubits (`topo.n_qubits()` wide).
    pub circuit: Circuit,
    /// Layout at circuit start.
    pub initial_layout: Layout,
    /// Layout at circuit end (routing and mirrors permute qubits).
    pub final_layout: Layout,
    /// SWAP gates inserted.
    pub swaps_inserted: usize,
    /// Mirror gates accepted (MIRAGE only).
    pub mirrors_accepted: usize,
    /// Two-qubit gates that went through the intermediate layer.
    pub mirror_candidates: usize,
}

impl RoutedCircuit {
    /// Mirror acceptance rate in `[0, 1]`.
    pub fn mirror_rate(&self) -> f64 {
        if self.mirror_candidates == 0 {
            0.0
        } else {
            self.mirrors_accepted as f64 / self.mirror_candidates as f64
        }
    }

    /// Natural log of the estimated success probability under the target's
    /// calibration: per-application edge errors over every routed gate plus
    /// readout errors on the final physical homes of the logical qubits
    /// (`final_layout.assignment()`). This is the quantity
    /// [`crate::trials::Metric::EstimatedSuccess`] post-selects on (higher
    /// is better).
    pub fn log_success(&self, target: &Target) -> f64 {
        target.circuit_log_success(&self.circuit)
            + target.readout_log_success(self.final_layout.real_assignment())
    }

    /// `exp` of [`RoutedCircuit::log_success`]: the estimated probability
    /// that the whole routed circuit, including readout, succeeds.
    pub fn estimated_success(&self, target: &Target) -> f64 {
        self.log_success(target).exp()
    }
}

/// Pre-computed per-node canonical coordinates for the two-qubit nodes of a
/// DAG (1Q nodes get `None`).
pub fn node_coords(dag: &Dag) -> Vec<Option<WeylCoord>> {
    dag.nodes
        .iter()
        .map(|n| {
            if n.gate.is_two_qubit() {
                Some(coords_of(&n.gate.matrix2()))
            } else {
                None
            }
        })
        .collect()
}

/// One scored node of the current SWAP step: its operands' physical homes
/// and residual distance under the current layout, tagged front/extended.
#[derive(Debug, Clone, Copy)]
struct ScoreEntry {
    pa: usize,
    pb: usize,
    dist: i64,
    in_front: bool,
}

/// Reusable working storage for [`route_with_scratch`].
///
/// A scratch grows to the high-water mark of the DAGs and devices it has
/// routed and never shrinks; reusing one across calls makes the router's
/// steady state allocation-free. Scratches carry **no routing state**
/// between calls — only capacity, plus a [`CostMemo`] of pure
/// `(class, edge) → cost` values (bit-identical to the shared-cache
/// answers it fronts, epoch-invalidated on calibration swaps) — so reuse
/// can never change results (the mark arrays are epoch-stamped: bumping a
/// generation counter invalidates them in O(1) instead of clearing).
///
/// [`crate::trials::TrialEngine`] keeps a pool of these, one checked out
/// per layout trial; standalone callers can hold one per thread. A scratch
/// is cheap to create (`Default`), so the convenience wrapper [`route`]
/// simply brings a fresh one.
#[derive(Debug, Default)]
pub struct RouterScratch {
    // Per-route bookkeeping (cleared and refilled each call).
    indeg: Vec<usize>,
    done: Vec<bool>,
    front: Vec<usize>,
    front_2q: Vec<usize>,
    // Decay table: `val[p]` is live only when `mark[p] == gen`, so the
    // per-gate "reset all decay" is a single counter bump.
    decay_val: Vec<f64>,
    decay_mark: Vec<u64>,
    decay_gen: u64,
    // Mirror-decision probe front and the shared extended-set BFS.
    probe: Vec<usize>,
    ext: Vec<usize>,
    queue: VecDeque<usize>,
    node_mark: Vec<u64>,
    node_epoch: u64,
    // Candidate-SWAP generation.
    homes: Vec<usize>,
    candidates: Vec<(usize, usize)>,
    // Incremental scoring: per-step entries plus a phys→entry inverted
    // index, both epoch-stamped.
    entries: Vec<ScoreEntry>,
    touch: Vec<Vec<u32>>,
    touch_mark: Vec<u64>,
    touch_gen: u64,
    entry_mark: Vec<u64>,
    entry_gen: u64,
    // Score-tie buffer fed to the RNG.
    best: Vec<(usize, usize)>,
    // Per-worker `(class, edge) → cost` memo for the mirror decision
    // (epoch-tagged; see `Target::gate_cost_on_memo`). Value-caching only:
    // a hit is bit-identical to the shared-cache fall-through, so — like
    // every other field — carrying it across calls cannot change results.
    cost_memo: CostMemo,
}

impl RouterScratch {
    /// A fresh scratch (no capacity reserved yet; buffers grow on first
    /// use and are retained across calls).
    pub fn new() -> RouterScratch {
        RouterScratch::default()
    }

    /// Grow the per-node and per-qubit arrays to fit a routing problem.
    fn prepare(&mut self, n_nodes: usize, n_phys: usize) {
        if self.node_mark.len() < n_nodes {
            self.node_mark.resize(n_nodes, 0);
        }
        if self.decay_val.len() < n_phys {
            self.decay_val.resize(n_phys, 1.0);
            self.decay_mark.resize(n_phys, 0);
        }
        if self.touch.len() < n_phys {
            self.touch.resize_with(n_phys, Vec::new);
            self.touch_mark.resize(n_phys, 0);
        }
    }
}

/// The lookahead window: up to `limit` unexecuted two-qubit descendants of
/// `seeds`, breadth-first, into the reusable `out` buffer. Identical
/// traversal (and therefore output order) to the seed implementation's
/// `HashSet`/`VecDeque` version; the seen-set is an epoch-stamped array.
#[allow(clippy::too_many_arguments)]
fn extended_set_into(
    dag: &Dag,
    seeds: &[usize],
    done: &[bool],
    limit: usize,
    node_mark: &mut [u64],
    node_epoch: &mut u64,
    queue: &mut VecDeque<usize>,
    out: &mut Vec<usize>,
) {
    out.clear();
    queue.clear();
    *node_epoch += 1;
    let ep = *node_epoch;
    for &id in seeds {
        node_mark[id] = ep;
        queue.push_back(id);
    }
    while let Some(id) = queue.pop_front() {
        if out.len() >= limit {
            break;
        }
        for &s in &dag.nodes[id].succs {
            if node_mark[s] != ep {
                node_mark[s] = ep;
                if !done[s] {
                    if dag.nodes[s].qubits.len() == 2 {
                        out.push(s);
                        if out.len() >= limit {
                            break;
                        }
                    }
                    queue.push_back(s);
                }
            }
        }
    }
}

/// Where physical qubit `x` ends up if the occupants of `p1` and `p2`
/// trade places. The single remap every delta computation goes through —
/// the convention must stay identical everywhere or the bit-identity
/// contract breaks.
#[inline]
fn swapped_home(x: usize, p1: usize, p2: usize) -> usize {
    if x == p1 {
        p2
    } else if x == p2 {
        p1
    } else {
        x
    }
}

/// One pass over `ids`: the summed residual distances (hops beyond
/// adjacency) of their 2Q nodes under `layout`, plus the delta that
/// swapping the occupants of `p1`/`p2` would apply — accumulated only over
/// the nodes whose operands sit on `p1` or `p2` (a node with *both*
/// operands there keeps its distance; [`swapped_home`] handles that
/// naturally). 1Q nodes contribute nothing, matching the legacy
/// `lookahead_sum`'s zero-distance convention. Sums are exact integers,
/// so `sum` and `sum + delta` reproduce two full walks bit-for-bit.
fn sum_and_swap_delta(
    dag: &Dag,
    ids: &[usize],
    layout: &Layout,
    topo: &CouplingMap,
    p1: usize,
    p2: usize,
) -> (i64, i64) {
    let mut sum = 0i64;
    let mut delta = 0i64;
    for &nid in ids {
        let n = &dag.nodes[nid];
        if n.qubits.len() != 2 {
            continue;
        }
        let pa = layout.phys(n.qubits[0]);
        let pb = layout.phys(n.qubits[1]);
        let d = i64::from(topo.distance(pa, pb).saturating_sub(1));
        sum += d;
        if pa == p1 || pa == p2 || pb == p1 || pb == p2 {
            let dm = i64::from(
                topo.distance(swapped_home(pa, p1, p2), swapped_home(pb, p1, p2))
                    .saturating_sub(1),
            );
            delta += dm - d;
        }
    }
    (sum, delta)
}

/// Route a circuit DAG onto `target` starting from `layout`.
///
/// The target prices decomposition costs for the mirror decision through
/// its shared cost cache. `rng` only breaks score ties, so two runs with
/// equal seeds are identical.
///
/// Allocates a fresh [`RouterScratch`] per call; hot loops should hold one
/// and call [`route_with_scratch`] instead.
pub fn route(
    dag: &Dag,
    coords: &[Option<WeylCoord>],
    target: &Target,
    layout: Layout,
    config: &RouterConfig,
    rng: &mut Rng,
) -> RoutedCircuit {
    route_with_scratch(
        dag,
        coords,
        target,
        layout,
        config,
        rng,
        &mut RouterScratch::new(),
    )
}

/// [`route`] with caller-provided working storage: the allocation-free
/// steady-state entry point. Results are independent of the scratch's
/// history (see [`RouterScratch`]).
pub fn route_with_scratch(
    dag: &Dag,
    coords: &[Option<WeylCoord>],
    target: &Target,
    layout: Layout,
    config: &RouterConfig,
    rng: &mut Rng,
    scratch: &mut RouterScratch,
) -> RoutedCircuit {
    let topo = target.topology();
    let n_phys = topo.n_qubits();
    assert!(dag.n_qubits <= n_phys, "circuit larger than device");
    let initial_layout = layout.clone();
    let mut layout = layout;
    let mut out = Circuit::new(n_phys);

    scratch.prepare(dag.len(), n_phys);
    let RouterScratch {
        indeg,
        done,
        front,
        front_2q,
        decay_val,
        decay_mark,
        decay_gen,
        probe,
        ext,
        queue,
        node_mark,
        node_epoch,
        homes,
        candidates,
        entries,
        touch,
        touch_mark,
        touch_gen,
        entry_mark,
        entry_gen,
        best,
        cost_memo,
    } = scratch;

    indeg.clear();
    indeg.extend(dag.nodes.iter().map(|n| n.preds.len()));
    done.clear();
    done.resize(dag.len(), false);
    front.clear();
    front_2q.clear();
    for n in &dag.nodes {
        if n.preds.is_empty() {
            front.push(n.id);
            if n.qubits.len() == 2 {
                front_2q.push(n.id);
            }
        }
    }
    // Fresh decay epoch: every qubit implicitly reads 1.0 again.
    *decay_gen += 1;
    let mut swaps_since_reset = 0usize;
    let mut swaps_inserted = 0usize;
    let mut mirrors_accepted = 0usize;
    let mut mirror_candidates = 0usize;
    let mut stall_swaps = 0usize;

    // Upper bound to catch non-termination bugs early (generously above any
    // legitimate routing length).
    let swap_budget = 64 + 16 * n_phys * dag.len().max(1);

    while !front.is_empty() {
        // --- Execute layer: run everything executable. ---
        let mut executed_any = false;
        let mut i = 0;
        while i < front.len() {
            let id = front[i];
            let node = &dag.nodes[id];
            let executable = match node.qubits.len() {
                1 => true,
                2 => {
                    let p1 = layout.phys(node.qubits[0]);
                    let p2 = layout.phys(node.qubits[1]);
                    topo.are_adjacent(p1, p2)
                }
                _ => unreachable!(),
            };
            if !executable {
                i += 1;
                continue;
            }
            front.swap_remove(i);
            if node.qubits.len() == 2 {
                let pos = front_2q
                    .iter()
                    .position(|&f| f == id)
                    .expect("2Q front node tracked");
                front_2q.swap_remove(pos);
            }
            done[id] = true;

            match node.qubits.len() {
                1 => {
                    out.push(node.gate.clone(), &[layout.phys(node.qubits[0])]);
                }
                2 => {
                    let (l1, l2) = (node.qubits[0], node.qubits[1]);
                    let (p1, p2) = (layout.phys(l1), layout.phys(l2));
                    let mut accepted = false;
                    if let Some(aggr) = config.aggression {
                        mirror_candidates += 1;
                        let w = coords[id].expect("2Q node has coords");
                        let wm = mirror_coord(&w);
                        // Price both options on the edge the gate executes
                        // on: a calibrated slow coupler scales dc and dcm
                        // alike, which amplifies their *difference* against
                        // the hop-denominated routing term — on expensive
                        // edges the decomposition delta dominates, exactly
                        // the effect the calibration-skew experiment sweeps.
                        // Priced through the scratch's per-worker memo, so
                        // the steady state takes no shared-cache lock here.
                        let dc = target.gate_cost_on_memo(cost_memo, &w, p1, p2);
                        let dcm = target.gate_cost_on_memo(cost_memo, &wm, p1, p2);

                        // Lookahead impact: the *remaining* front plus the
                        // successors this gate would release (exactly one
                        // predecessor left — this node still counts).
                        probe.clear();
                        probe.extend_from_slice(front);
                        for &s in &dag.nodes[id].succs {
                            if !done[s] && indeg[s] == 1 {
                                probe.push(s);
                            }
                        }
                        // The mirror decision looks deeper than the swap
                        // ranker: mirrors are rarer, higher-stakes moves.
                        extended_set_into(
                            dag,
                            probe,
                            done,
                            config.mirror_lookahead,
                            node_mark,
                            node_epoch,
                            queue,
                            ext,
                        );
                        // The mirror decision uses *summed* distances, not
                        // the swap-ranking average: the decomposition-cost
                        // delta is an absolute duration, so the routing term
                        // must be absolute too. Both sums are computed in
                        // one pass: residual distances are integers (exact
                        // in f64), so "current sum" plus "delta over the
                        // nodes touching p1/p2 under the mirrored mapping"
                        // reproduces the two-walk result bit-for-bit.
                        let (f_sum, f_delta) =
                            sum_and_swap_delta(dag, probe, &layout, topo, p1, p2);
                        let (e_sum, e_delta) = sum_and_swap_delta(dag, ext, &layout, topo, p1, p2);
                        let we = config.extended_set_weight;
                        let h_plain = f_sum as f64 + we * e_sum as f64;
                        let h_mirror = (f_sum + f_delta) as f64 + we * ((e_sum + e_delta) as f64);

                        let lambda = config.mirror_heuristic_weight;
                        let cost_current = dc + lambda * h_plain;
                        let cost_trial = dcm + lambda * h_mirror;
                        if aggr.accept(cost_current, cost_trial) {
                            accepted = true;
                            mirrors_accepted += 1;
                            let u = node.gate.matrix2();
                            out.push(Gate::Unitary2(Mat4::swap().mul(&u)), &[p1, p2]);
                            layout.swap_physical(p1, p2);
                        }
                    }
                    if !accepted {
                        out.push(node.gate.clone(), &[p1, p2]);
                    }
                }
                _ => unreachable!(),
            }

            // Release successors into the front layer.
            for &s in &dag.nodes[id].succs {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    front.push(s);
                    if dag.nodes[s].qubits.len() == 2 {
                        front_2q.push(s);
                    }
                }
            }
            executed_any = true;
            // "Reset after every five steps or gate mapping."
            *decay_gen += 1;
            swaps_since_reset = 0;
            stall_swaps = 0;
            i = 0; // restart scan: new nodes may be executable
        }
        if front.is_empty() {
            break;
        }
        if executed_any {
            continue;
        }

        // --- SWAP insertion: no gate is executable. ---
        assert!(
            swaps_inserted < swap_budget,
            "routing exceeded its swap budget — probable non-termination"
        );

        extended_set_into(
            dag,
            front,
            done,
            config.extended_set_size,
            node_mark,
            node_epoch,
            queue,
            ext,
        );

        // Candidate SWAPs: coupling edges incident to the physical home of
        // any front-layer two-qubit operand, deduplicated through a sorted
        // scratch Vec (same sorted order the seed's `BTreeSet` produced).
        homes.clear();
        for &id in front_2q.iter() {
            let n = &dag.nodes[id];
            homes.push(layout.phys(n.qubits[0]));
            homes.push(layout.phys(n.qubits[1]));
        }
        homes.sort_unstable();
        homes.dedup();
        candidates.clear();
        for &p in homes.iter() {
            for &q in topo.neighbors(p) {
                candidates.push((p.min(q), p.max(q)));
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        debug_assert!(
            !candidates.is_empty(),
            "connected topology yields candidates"
        );

        // Base scores for this step, computed once: per-node residual
        // distances over the 2Q front view and the extended set, plus a
        // phys→entry inverted index so each candidate re-prices only the
        // nodes whose operands sit on its two qubits. Distances are
        // integers, so base-plus-delta sums are exact — each candidate's
        // score is bit-identical to a full re-walk under the trial layout.
        *touch_gen += 1;
        entries.clear();
        let mut f_base = 0i64;
        let mut e_base = 0i64;
        for (in_front, id) in front_2q
            .iter()
            .map(|&id| (true, id))
            .chain(ext.iter().map(|&id| (false, id)))
        {
            let n = &dag.nodes[id];
            let pa = layout.phys(n.qubits[0]);
            let pb = layout.phys(n.qubits[1]);
            let d = i64::from(topo.distance(pa, pb).saturating_sub(1));
            if in_front {
                f_base += d;
            } else {
                e_base += d;
            }
            let ei = entries.len() as u32;
            entries.push(ScoreEntry {
                pa,
                pb,
                dist: d,
                in_front,
            });
            for p in [pa, pb] {
                if touch_mark[p] != *touch_gen {
                    touch[p].clear();
                    touch_mark[p] = *touch_gen;
                }
                touch[p].push(ei);
            }
        }
        if entry_mark.len() < entries.len() {
            entry_mark.resize(entries.len(), 0);
        }
        let n_f = front_2q.len();
        let n_e = ext.len();

        best.clear();
        let mut best_score = f64::INFINITY;
        for &(p1, p2) in candidates.iter() {
            *entry_gen += 1;
            let gen = *entry_gen;
            let mut df = 0i64;
            let mut de = 0i64;
            for p in [p1, p2] {
                if touch_mark[p] != *touch_gen {
                    continue;
                }
                for &ei in &touch[p] {
                    let ei = ei as usize;
                    if entry_mark[ei] == gen {
                        continue;
                    }
                    entry_mark[ei] = gen;
                    let e = entries[ei];
                    let pa = swapped_home(e.pa, p1, p2);
                    let pb = swapped_home(e.pb, p1, p2);
                    let delta = i64::from(topo.distance(pa, pb).saturating_sub(1)) - e.dist;
                    if e.in_front {
                        df += delta;
                    } else {
                        de += delta;
                    }
                }
            }
            let f_term = if n_f == 0 {
                0.0
            } else {
                (f_base + df) as f64 / n_f as f64
            };
            let e_term = if n_e == 0 {
                0.0
            } else {
                (e_base + de) as f64 / n_e as f64
            };
            let h = f_term + config.extended_set_weight * e_term;
            let d1 = if decay_mark[p1] == *decay_gen {
                decay_val[p1]
            } else {
                1.0
            };
            let d2 = if decay_mark[p2] == *decay_gen {
                decay_val[p2]
            } else {
                1.0
            };
            let score = h * d1.max(d2);
            if score < best_score - 1e-12 {
                best_score = score;
                best.clear();
                best.push((p1, p2));
            } else if (score - best_score).abs() <= 1e-12 {
                best.push((p1, p2));
            }
        }
        let &(p1, p2) = rng.choose(best);

        // Anti-livelock: after long swap droughts, force progress along the
        // shortest path of the first front gate.
        stall_swaps += 1;
        let (p1, p2) = if stall_swaps > 8 * n_phys + 32 {
            force_step(dag, front, &layout, topo)
        } else {
            (p1, p2)
        };

        out.push(Gate::Swap, &[p1, p2]);
        layout.swap_physical(p1, p2);
        swaps_inserted += 1;
        for p in [p1, p2] {
            let current = if decay_mark[p] == *decay_gen {
                decay_val[p]
            } else {
                1.0
            };
            decay_val[p] = current + config.decay_rate;
            decay_mark[p] = *decay_gen;
        }
        swaps_since_reset += 1;
        if swaps_since_reset >= config.decay_reset {
            *decay_gen += 1;
            swaps_since_reset = 0;
        }
    }

    RoutedCircuit {
        circuit: out,
        initial_layout,
        final_layout: layout,
        swaps_inserted,
        mirrors_accepted,
        mirror_candidates,
    }
}

/// Peephole "mirage SWAP" absorption (paper §I: a SWAP absorbed into an
/// adjacent computational gate during decomposition). Whenever an explicit
/// SWAP on `(p,q)` immediately follows a two-qubit gate on the same pair
/// (no intervening gate touching `p` or `q`), the pair fuses into one
/// mirror block `SWAP·U`; chains fuse too, since the fused block remains
/// the latest gate on the pair. In the √iSWAP basis this is always a win:
/// any fused block costs at most 3 applications while the separate pair
/// costs at least 1 + 3.
///
/// One forward pass over the instruction list (the seed re-scanned the
/// whole list inside a fixpoint loop with per-instruction clones — O(n²)
/// on large routed circuits — yet a single pass already reaches the
/// fixpoint: fusing only removes a SWAP and rewrites the preceding gate in
/// place, which can never create a new adjacency for an earlier
/// instruction; `legacy::absorb_adjacent_swaps` is kept to prove the
/// equivalence). Returns the rewritten circuit and the number of SWAPs
/// absorbed. The rewrite is local — wire semantics are unchanged, so
/// layouts need no adjustment.
pub fn absorb_adjacent_swaps(c: &Circuit) -> (Circuit, usize) {
    let mut out: Vec<Instruction> = Vec::with_capacity(c.instructions.len());
    // last_touch[q] = index (into `out`) of the latest instruction on q.
    let mut last_touch: Vec<Option<usize>> = vec![None; c.n_qubits];
    let mut fused = 0usize;
    for instr in &c.instructions {
        if matches!(instr.gate, Gate::Swap) {
            let (p, q) = (instr.qubits[0], instr.qubits[1]);
            if let (Some(a), Some(b)) = (last_touch[p], last_touch[q]) {
                if a == b && out[a].gate.is_two_qubit() {
                    let same_pair = (out[a].qubits[0] == p && out[a].qubits[1] == q)
                        || (out[a].qubits[0] == q && out[a].qubits[1] == p);
                    if same_pair {
                        // Fuse: U then SWAP = SWAP·U as a matrix on the
                        // previous gate's operand order (SWAP is
                        // order-symmetric).
                        let u = out[a].gate.matrix2();
                        out[a].gate = Gate::Unitary2(Mat4::swap().mul(&u));
                        fused += 1;
                        // `a` stays the last touch of p and q.
                        continue;
                    }
                }
            }
        }
        let idx = out.len();
        for &qb in &instr.qubits {
            last_touch[qb] = Some(idx);
        }
        out.push(instr.clone());
    }
    (
        Circuit {
            n_qubits: c.n_qubits,
            instructions: out,
        },
        fused,
    )
}

/// Deterministic progress step: the first SWAP along the shortest path
/// between the operands of the first front-layer 2Q gate.
fn force_step(dag: &Dag, front: &[usize], layout: &Layout, topo: &CouplingMap) -> (usize, usize) {
    let id = front
        .iter()
        .copied()
        .find(|&id| dag.nodes[id].qubits.len() == 2)
        .expect("stalled front contains a 2Q gate");
    let n = &dag.nodes[id];
    let src = layout.phys(n.qubits[0]);
    let dst = layout.phys(n.qubits[1]);
    // First hop of a BFS shortest path from src toward dst.
    let next = topo
        .neighbors(src)
        .iter()
        .copied()
        .min_by_key(|&nb| topo.distance(nb, dst))
        .expect("connected topology");
    (src.min(next), src.max(next))
}

/// The pre-optimization router, kept verbatim as a **test-only** reference
/// fixture.
///
/// `legacy::route` clones the full [`Layout`] and re-scores the entire
/// front and extended set for every candidate SWAP, rebuilds
/// `HashSet`/`VecDeque`/`BTreeSet` scratch on every step, and walks the
/// mirror decision's lookahead twice; `legacy::absorb_adjacent_swaps`
/// re-scans the instruction list inside a fixpoint loop. After three
/// re-anchor cycles of golden fingerprints carried the equivalence proof,
/// the module was compiled out of production builds; the randomized
/// `route_matches_legacy_*` sweeps below keep the bit-identity property
/// under test, and `tests/golden_routing.rs` pins the outputs across
/// releases.
#[cfg(test)]
pub mod legacy {
    use super::*;

    /// The pre-optimization [`super::route`]: per-candidate layout clones,
    /// full re-scoring, per-step scratch allocation. Bit-identical output,
    /// several times slower; see the [module docs](self).
    pub fn route(
        dag: &Dag,
        coords: &[Option<WeylCoord>],
        target: &Target,
        layout: Layout,
        config: &RouterConfig,
        rng: &mut Rng,
    ) -> RoutedCircuit {
        let topo = target.topology();
        let n_phys = topo.n_qubits();
        assert!(dag.n_qubits <= n_phys, "circuit larger than device");
        let initial_layout = layout.clone();
        let mut layout = layout;
        let mut out = Circuit::new(n_phys);

        let mut indeg = dag.indegrees();
        let mut front: Vec<usize> = dag.front_layer();
        let mut done = vec![false; dag.len()];
        let mut decay = vec![1.0f64; n_phys];
        let mut swaps_since_reset = 0usize;
        let mut swaps_inserted = 0usize;
        let mut mirrors_accepted = 0usize;
        let mut mirror_candidates = 0usize;
        let mut stall_swaps = 0usize;

        let swap_budget = 64 + 16 * n_phys * dag.len().max(1);

        while !front.is_empty() {
            // --- Execute layer: run everything executable. ---
            let mut executed_any = false;
            let mut i = 0;
            while i < front.len() {
                let id = front[i];
                let node = &dag.nodes[id];
                let executable = match node.qubits.len() {
                    1 => true,
                    2 => {
                        let p1 = layout.phys(node.qubits[0]);
                        let p2 = layout.phys(node.qubits[1]);
                        topo.are_adjacent(p1, p2)
                    }
                    _ => unreachable!(),
                };
                if !executable {
                    i += 1;
                    continue;
                }
                front.swap_remove(i);
                done[id] = true;

                match node.qubits.len() {
                    1 => {
                        out.push(node.gate.clone(), &[layout.phys(node.qubits[0])]);
                    }
                    2 => {
                        let (l1, l2) = (node.qubits[0], node.qubits[1]);
                        let (p1, p2) = (layout.phys(l1), layout.phys(l2));
                        let mut accepted = false;
                        if let Some(aggr) = config.aggression {
                            mirror_candidates += 1;
                            let w = coords[id].expect("2Q node has coords");
                            let wm = mirror_coord(&w);
                            let dc = target.gate_cost_on(&w, p1, p2);
                            let dcm = target.gate_cost_on(&wm, p1, p2);

                            let mut probe = front.clone();
                            release_successors(dag, id, &indeg, &mut probe, &done);
                            let ext = extended_set(dag, &probe, &done, config.mirror_lookahead);
                            let h_plain = lookahead_sum(&probe, &ext, dag, &layout, topo, config);
                            let mut mirrored = layout.clone();
                            mirrored.swap_physical(p1, p2);
                            let h_mirror =
                                lookahead_sum(&probe, &ext, dag, &mirrored, topo, config);

                            let lambda = config.mirror_heuristic_weight;
                            let cost_current = dc + lambda * h_plain;
                            let cost_trial = dcm + lambda * h_mirror;
                            if aggr.accept(cost_current, cost_trial) {
                                accepted = true;
                                mirrors_accepted += 1;
                                let u = node.gate.matrix2();
                                out.push(Gate::Unitary2(Mat4::swap().mul(&u)), &[p1, p2]);
                                layout.swap_physical(p1, p2);
                            }
                        }
                        if !accepted {
                            out.push(node.gate.clone(), &[p1, p2]);
                        }
                    }
                    _ => unreachable!(),
                }

                for &s in &dag.nodes[id].succs {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        front.push(s);
                    }
                }
                executed_any = true;
                decay.iter_mut().for_each(|d| *d = 1.0);
                swaps_since_reset = 0;
                stall_swaps = 0;
                i = 0;
            }
            if front.is_empty() {
                break;
            }
            if executed_any {
                continue;
            }

            // --- SWAP insertion: no gate is executable. ---
            assert!(
                swaps_inserted < swap_budget,
                "routing exceeded its swap budget — probable non-termination"
            );

            let ext = extended_set(dag, &front, &done, config.extended_set_size);
            let candidates = candidate_swaps(dag, &front, &layout, topo);
            debug_assert!(
                !candidates.is_empty(),
                "connected topology yields candidates"
            );

            let mut best: Vec<(usize, usize)> = Vec::new();
            let mut best_score = f64::INFINITY;
            for &(p1, p2) in &candidates {
                let mut trial = layout.clone();
                trial.swap_physical(p1, p2);
                let h = heuristic(&front, &ext, dag, &trial, topo, config);
                let score = h * decay[p1].max(decay[p2]);
                if score < best_score - 1e-12 {
                    best_score = score;
                    best.clear();
                    best.push((p1, p2));
                } else if (score - best_score).abs() <= 1e-12 {
                    best.push((p1, p2));
                }
            }
            let &(p1, p2) = rng.choose(&best);

            stall_swaps += 1;
            let (p1, p2) = if stall_swaps > 8 * n_phys + 32 {
                force_step(dag, &front, &layout, topo)
            } else {
                (p1, p2)
            };

            out.push(Gate::Swap, &[p1, p2]);
            layout.swap_physical(p1, p2);
            swaps_inserted += 1;
            decay[p1] += config.decay_rate;
            decay[p2] += config.decay_rate;
            swaps_since_reset += 1;
            if swaps_since_reset >= config.decay_reset {
                decay.iter_mut().for_each(|d| *d = 1.0);
                swaps_since_reset = 0;
            }
        }

        RoutedCircuit {
            circuit: out,
            initial_layout,
            final_layout: layout,
            swaps_inserted,
            mirrors_accepted,
            mirror_candidates,
        }
    }

    /// The pre-optimization [`super::absorb_adjacent_swaps`]: fixpoint loop
    /// over the whole instruction list with per-instruction clones.
    pub fn absorb_adjacent_swaps(c: &Circuit) -> (Circuit, usize) {
        let mut instrs: Vec<Option<Instruction>> =
            c.instructions.iter().cloned().map(Some).collect();
        let mut fused = 0usize;
        loop {
            let mut changed = false;
            let mut last_touch: Vec<Option<usize>> = vec![None; c.n_qubits];
            for i in 0..instrs.len() {
                let Some(instr) = instrs[i].clone() else {
                    continue;
                };
                if matches!(instr.gate, Gate::Swap) {
                    let (p, q) = (instr.qubits[0], instr.qubits[1]);
                    if let (Some(a), Some(b)) = (last_touch[p], last_touch[q]) {
                        if a == b {
                            if let Some(prev) = instrs[a].clone() {
                                if prev.gate.is_two_qubit() {
                                    let same_pair = (prev.qubits[0] == p && prev.qubits[1] == q)
                                        || (prev.qubits[0] == q && prev.qubits[1] == p);
                                    if same_pair {
                                        let u = prev.gate.matrix2();
                                        instrs[a] = Some(Instruction {
                                            gate: Gate::Unitary2(Mat4::swap().mul(&u)),
                                            qubits: prev.qubits.clone(),
                                        });
                                        instrs[i] = None;
                                        fused += 1;
                                        changed = true;
                                        continue;
                                    }
                                }
                            }
                        }
                    }
                }
                for &qb in &instr.qubits {
                    last_touch[qb] = Some(i);
                }
            }
            if !changed {
                break;
            }
        }
        let out = Circuit {
            n_qubits: c.n_qubits,
            instructions: instrs.into_iter().flatten().collect(),
        };
        (out, fused)
    }

    /// Pretend `id` completed: extend `probe` with its newly released 2Q
    /// successors.
    fn release_successors(
        dag: &Dag,
        id: usize,
        indeg: &[usize],
        probe: &mut Vec<usize>,
        done: &[bool],
    ) {
        for &s in &dag.nodes[id].succs {
            // `id` still counts toward the successor's in-degree at this
            // point, so "released by id" means exactly one remaining
            // predecessor.
            if !done[s] && indeg[s] == 1 {
                probe.push(s);
            }
        }
    }

    /// The lookahead window, allocating fresh set/queue/output per call.
    fn extended_set(dag: &Dag, front: &[usize], done: &[bool], limit: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(limit);
        let mut queue: std::collections::VecDeque<usize> = front.iter().copied().collect();
        let mut seen: std::collections::HashSet<usize> = front.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            if out.len() >= limit {
                break;
            }
            for &s in &dag.nodes[id].succs {
                if seen.insert(s) && !done[s] {
                    if dag.nodes[s].qubits.len() == 2 {
                        out.push(s);
                        if out.len() >= limit {
                            break;
                        }
                    }
                    queue.push_back(s);
                }
            }
        }
        out
    }

    /// The SABRE distance heuristic over front and extended sets.
    fn heuristic(
        front: &[usize],
        ext: &[usize],
        dag: &Dag,
        layout: &Layout,
        topo: &CouplingMap,
        config: &RouterConfig,
    ) -> f64 {
        let dist = |id: usize| -> f64 {
            let n = &dag.nodes[id];
            if n.qubits.len() != 2 {
                return 0.0;
            }
            let p1 = layout.phys(n.qubits[0]);
            let p2 = layout.phys(n.qubits[1]);
            f64::from(topo.distance(p1, p2).saturating_sub(1))
        };
        let front_2q: Vec<usize> = front
            .iter()
            .copied()
            .filter(|&id| dag.nodes[id].qubits.len() == 2)
            .collect();
        let f_term = if front_2q.is_empty() {
            0.0
        } else {
            front_2q.iter().map(|&id| dist(id)).sum::<f64>() / front_2q.len() as f64
        };
        let e_term = if ext.is_empty() {
            0.0
        } else {
            ext.iter().map(|&id| dist(id)).sum::<f64>() / ext.len() as f64
        };
        f_term + config.extended_set_weight * e_term
    }

    /// Absolute lookahead score for the mirror decision: *summed* residual
    /// distances over the front layer plus the weighted extended set.
    fn lookahead_sum(
        front: &[usize],
        ext: &[usize],
        dag: &Dag,
        layout: &Layout,
        topo: &CouplingMap,
        config: &RouterConfig,
    ) -> f64 {
        let dist = |id: usize| -> f64 {
            let n = &dag.nodes[id];
            if n.qubits.len() != 2 {
                return 0.0;
            }
            let p1 = layout.phys(n.qubits[0]);
            let p2 = layout.phys(n.qubits[1]);
            f64::from(topo.distance(p1, p2).saturating_sub(1))
        };
        let f_term: f64 = front.iter().map(|&id| dist(id)).sum();
        let e_term: f64 = ext.iter().map(|&id| dist(id)).sum();
        f_term + config.extended_set_weight * e_term
    }

    /// Candidate SWAPs through `BTreeSet` collection.
    fn candidate_swaps(
        dag: &Dag,
        front: &[usize],
        layout: &Layout,
        topo: &CouplingMap,
    ) -> Vec<(usize, usize)> {
        let mut homes: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for &id in front {
            let n = &dag.nodes[id];
            if n.qubits.len() == 2 {
                homes.insert(layout.phys(n.qubits[0]));
                homes.insert(layout.phys(n.qubits[1]));
            }
        }
        let mut out: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
        for &p in &homes {
            for &q in topo.neighbors(p) {
                out.insert((p.min(q), p.max(q)));
            }
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_routed;
    use mirage_circuit::consolidate::consolidate;
    use mirage_circuit::generators::{ghz, qft, two_local_full};

    fn target(topo: CouplingMap) -> Target {
        Target::sqrt_iswap(topo)
    }

    fn route_simple(
        c: &Circuit,
        target: &Target,
        aggression: Option<Aggression>,
        seed: u64,
    ) -> RoutedCircuit {
        let cc = consolidate(c);
        let dag = Dag::from_circuit(&cc);
        let coords = node_coords(&dag);
        let config = RouterConfig {
            aggression,
            ..RouterConfig::default()
        };
        let mut rng = Rng::new(seed);
        route(
            &dag,
            &coords,
            target,
            Layout::trivial(c.n_qubits, target.n_qubits()),
            &config,
            &mut rng,
        )
    }

    #[test]
    fn already_routable_needs_no_swaps() {
        let t = target(CouplingMap::line(3));
        let c = ghz(3);
        let r = route_simple(&c, &t, None, 1);
        assert_eq!(r.swaps_inserted, 0);
        assert!(verify_routed(&c, &r, &t));
    }

    #[test]
    fn sabre_inserts_swaps_on_line() {
        let t = target(CouplingMap::line(4));
        let c = two_local_full(4, 1, 7);
        let r = route_simple(&c, &t, None, 2);
        assert!(r.swaps_inserted > 0, "full entanglement on a line swaps");
        assert_eq!(r.mirrors_accepted, 0);
        // Every 2Q gate must land on a coupled pair.
        for instr in &r.circuit.instructions {
            if instr.gate.is_two_qubit() {
                assert!(t.topology().are_adjacent(instr.qubits[0], instr.qubits[1]));
            }
        }
        assert!(verify_routed(&c, &r, &t));
    }

    #[test]
    fn mirage_preserves_semantics() {
        let t = target(CouplingMap::line(4));
        let c = two_local_full(4, 1, 7);
        for (seed, aggr) in [
            (3, Aggression::A1),
            (4, Aggression::A2),
            (5, Aggression::A3),
        ] {
            let r = route_simple(&c, &t, Some(aggr), seed);
            assert!(
                verify_routed(&c, &r, &t),
                "aggression {aggr:?} broke semantics"
            );
        }
    }

    #[test]
    fn mirage_a0_equals_sabre() {
        let t = target(CouplingMap::line(4));
        let c = two_local_full(4, 1, 9);
        let a0 = route_simple(&c, &t, Some(Aggression::A0), 6);
        let sabre = route_simple(&c, &t, None, 6);
        assert_eq!(a0.swaps_inserted, sabre.swaps_inserted);
        assert_eq!(a0.mirrors_accepted, 0);
        assert_eq!(a0.circuit, sabre.circuit);
    }

    #[test]
    fn mirage_accepts_mirrors_on_constrained_topology() {
        let t = target(CouplingMap::line(4));
        let c = two_local_full(4, 2, 11);
        let r = route_simple(&c, &t, Some(Aggression::A2), 7);
        assert!(
            r.mirrors_accepted > 0,
            "expected mirror acceptances, got 0 of {}",
            r.mirror_candidates
        );
        assert!(verify_routed(&c, &r, &t));
    }

    #[test]
    fn mirrors_reduce_swaps_or_depth() {
        let t = target(CouplingMap::line(5));
        let c = two_local_full(5, 2, 13);
        let sabre = route_simple(&c, &t, None, 8);
        let mirage = route_simple(&c, &t, Some(Aggression::A1), 8);
        assert!(
            mirage.swaps_inserted <= sabre.swaps_inserted,
            "mirage {} vs sabre {}",
            mirage.swaps_inserted,
            sabre.swaps_inserted
        );
    }

    #[test]
    fn routing_on_grid() {
        let t = target(CouplingMap::grid(3, 3));
        let c = two_local_full(6, 1, 17);
        let r = route_simple(&c, &t, Some(Aggression::A2), 9);
        for instr in &r.circuit.instructions {
            if instr.gate.is_two_qubit() {
                assert!(t.topology().are_adjacent(instr.qubits[0], instr.qubits[1]));
            }
        }
        assert!(verify_routed(&c, &r, &t));
    }

    #[test]
    fn aggression_accept_semantics() {
        assert!(!Aggression::A0.accept(1.0, 0.0));
        assert!(Aggression::A1.accept(1.0, 0.5));
        assert!(!Aggression::A1.accept(1.0, 1.0));
        assert!(Aggression::A2.accept(1.0, 1.0));
        assert!(!Aggression::A2.accept(1.0, 1.5));
        assert!(Aggression::A3.accept(0.0, 99.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let t = target(CouplingMap::line(5));
        let c = two_local_full(5, 1, 21);
        let a = route_simple(&c, &t, Some(Aggression::A2), 10);
        let b = route_simple(&c, &t, Some(Aggression::A2), 10);
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.swaps_inserted, b.swaps_inserted);
    }

    #[test]
    fn routing_in_cnot_basis() {
        // The mirror decision prices gates in whatever basis the target
        // declares — a CNOT-basis device must still route correctly.
        let t = Target::cnot(CouplingMap::line(4));
        let c = two_local_full(4, 1, 19);
        for aggr in [None, Some(Aggression::A2)] {
            let r = route_simple(&c, &t, aggr, 12);
            assert!(
                verify_routed(&c, &r, &t),
                "{aggr:?} broke CNOT-basis routing"
            );
        }
    }

    #[test]
    fn random_initial_layout_verifies() {
        let t = target(CouplingMap::grid(3, 3));
        let c = ghz(5);
        let cc = consolidate(&c);
        let dag = Dag::from_circuit(&cc);
        let coords = node_coords(&dag);
        let mut rng = Rng::new(33);
        let layout = Layout::random(c.n_qubits, t.n_qubits(), &mut rng);
        let r = route(
            &dag,
            &coords,
            &t,
            layout,
            &RouterConfig {
                aggression: Some(Aggression::A2),
                ..RouterConfig::default()
            },
            &mut rng,
        );
        assert!(verify_routed(&c, &r, &t));
    }

    /// The bit-identity contract: the optimized hot path must reproduce
    /// the legacy router's output exactly — same instructions, same
    /// layouts, same counters — across circuits, topologies, aggression
    /// levels, calibrations, and seeds.
    #[test]
    fn route_matches_legacy_bit_for_bit() {
        let topos = [
            CouplingMap::line(6),
            CouplingMap::grid(2, 3),
            CouplingMap::ring(6),
            CouplingMap::heavy_hex(3),
        ];
        let mut case = 0u64;
        for topo in topos {
            let skew = crate::calibration::Calibration::skewed(
                &topo,
                &mut Rng::new(0xD00D ^ topo.n_qubits() as u64),
                3e-3,
                0.3,
                10.0,
            )
            .unwrap();
            for calibrated in [false, true] {
                let t = if calibrated {
                    Target::sqrt_iswap(topo.clone())
                        .with_calibration(skew.clone())
                        .unwrap()
                } else {
                    Target::sqrt_iswap(topo.clone())
                };
                let n = topo.n_qubits().min(6);
                for circuit in [qft(n, false), two_local_full(n, 1, 0xF0 + case)] {
                    let cc = consolidate(&circuit);
                    let dag = Dag::from_circuit(&cc);
                    let coords = node_coords(&dag);
                    for aggression in [
                        None,
                        Some(Aggression::A1),
                        Some(Aggression::A2),
                        Some(Aggression::A3),
                    ] {
                        case += 1;
                        let config = RouterConfig {
                            aggression,
                            ..RouterConfig::default()
                        };
                        let mut rng_a = Rng::new(0xBEEF + case);
                        let layout = Layout::random(cc.n_qubits, t.n_qubits(), &mut rng_a);
                        let mut rng_b = rng_a.clone();
                        let new = route(&dag, &coords, &t, layout.clone(), &config, &mut rng_a);
                        let old = legacy::route(&dag, &coords, &t, layout, &config, &mut rng_b);
                        assert_eq!(new.circuit, old.circuit, "case {case} diverged");
                        assert_eq!(new.final_layout, old.final_layout);
                        assert_eq!(new.swaps_inserted, old.swaps_inserted);
                        assert_eq!(new.mirrors_accepted, old.mirrors_accepted);
                        assert_eq!(new.mirror_candidates, old.mirror_candidates);
                        // And the RNGs advanced in lockstep (same number of
                        // tie-breaks, same draws).
                        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
                    }
                }
            }
        }
        assert!(case >= 60, "sweep shrank: {case} cases");
    }

    /// Scratch reuse across different DAGs, devices, and configs must not
    /// leak state between calls.
    #[test]
    fn scratch_reuse_is_stateless() {
        let mut scratch = RouterScratch::new();
        let jobs = [
            (CouplingMap::heavy_hex(3), qft(8, false), 31u64),
            (CouplingMap::line(5), two_local_full(5, 2, 3), 32),
            (CouplingMap::grid(3, 3), qft(6, true), 33),
            (CouplingMap::line(4), two_local_full(4, 1, 4), 34),
        ];
        for (topo, circuit, seed) in jobs {
            let t = target(topo);
            let cc = consolidate(&circuit);
            let dag = Dag::from_circuit(&cc);
            let coords = node_coords(&dag);
            let config = RouterConfig {
                aggression: Some(Aggression::A2),
                ..RouterConfig::default()
            };
            let mut rng_a = Rng::new(seed);
            let layout = Layout::random(cc.n_qubits, t.n_qubits(), &mut rng_a);
            let mut rng_b = rng_a.clone();
            let reused = route_with_scratch(
                &dag,
                &coords,
                &t,
                layout.clone(),
                &config,
                &mut rng_a,
                &mut scratch,
            );
            let fresh = route(&dag, &coords, &t, layout, &config, &mut rng_b);
            assert_eq!(reused.circuit, fresh.circuit, "scratch history leaked");
            assert!(verify_routed(&circuit, &reused, &t));
        }
    }

    #[test]
    fn absorb_matches_legacy_on_routed_circuits() {
        for seed in 0..8u64 {
            let t = target(CouplingMap::line(5));
            let c = two_local_full(5, 2, 100 + seed);
            // A0 keeps explicit SWAPs in the output, giving the absorber
            // real work.
            let r = route_simple(&c, &t, Some(Aggression::A0), seed);
            let (new_c, new_fused) = absorb_adjacent_swaps(&r.circuit);
            let (old_c, old_fused) = legacy::absorb_adjacent_swaps(&r.circuit);
            assert_eq!(new_c, old_c, "seed {seed} diverged");
            assert_eq!(new_fused, old_fused);
        }
    }

    #[test]
    fn absorb_fuses_gate_then_swap_chains() {
        // U(0,1) · SWAP(0,1) fuses; a second SWAP fuses into the fused
        // block again (SWAP·SWAP·U = U).
        let mut c = Circuit::new(2);
        c.cx(0, 1).swap(0, 1).swap(0, 1);
        let (fused, n) = absorb_adjacent_swaps(&c);
        assert_eq!(n, 2);
        assert_eq!(fused.instructions.len(), 1);
        let m = fused.instructions[0].gate.matrix2();
        let cx = Gate::Cx.matrix2();
        for i in 0..4 {
            for j in 0..4 {
                assert!((m.e[i][j].re - cx.e[i][j].re).abs() < 1e-12);
                assert!((m.e[i][j].im - cx.e[i][j].im).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn absorb_respects_intervening_gates() {
        // A 1Q gate on either wire between U and the SWAP blocks fusion.
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(0).swap(0, 1);
        let (fused, n) = absorb_adjacent_swaps(&c);
        assert_eq!(n, 0);
        assert_eq!(fused.instructions.len(), 3);
        // Gates on other wires don't block it.
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).swap(0, 1);
        let (fused, n) = absorb_adjacent_swaps(&c);
        assert_eq!(n, 1);
        assert_eq!(fused.instructions.len(), 2);
    }
}
