//! The MIRAGE transpiler: SABRE-style routing with mirror-gate
//! decomposition awareness (the paper's primary contribution, §IV).
//!
//! * [`target::Target`] — the device being compiled for: coupling
//!   topology, basis gate, lazily-built coverage set, calibration data,
//!   and the shared cost cache. Every layer below consumes a `&Target`.
//! * [`calibration::Calibration`] — per-edge 2Q durations/error rates and
//!   per-qubit 1Q/readout errors, with uniform/synthetic builders and a
//!   plain-text file format; drives the noise-aware
//!   [`trials::Metric::EstimatedSuccess`] routing metric.
//! * [`layout::Layout`] — the logical→physical qubit mapping.
//! * [`placement`] — pluggable initial-layout strategies behind the
//!   [`placement::LayoutStrategy`] trait: the paper's random seeding,
//!   interaction/degree matching, calibration-aware region seeding, and
//!   the VF2 embedding pre-pass (success-probability tie-breaking).
//! * [`router`] — the routing engine: a faithful SABRE baseline (front
//!   layer, lookahead window, decay) extended with MIRAGE's *intermediate
//!   layer*, which may replace each executed two-qubit gate `U` by its
//!   mirror `SWAP·U` per the aggression rules of Algorithm 2.
//! * [`trials`] — the [`trials::TrialEngine`]: strategy-seeded layout
//!   trials, SABRE forward–backward refinement, independent routing trials
//!   (optionally in parallel), and post-selection by SWAP count, the
//!   duration-weighted critical path (MIRAGE-Depth, §IV-B), or estimated
//!   success probability.
//! * [`pipeline`] — the end-to-end `transpile` entry point: consolidation,
//!   the VF2 no-SWAP check, routing, and metrics.
//! * [`verify`] — statevector verification that a routed circuit equals its
//!   input up to the layout permutations, plus coupling-map conformance
//!   (used heavily by the test-suite).
//!
//! # Quickstart
//!
//! ```
//! use mirage_core::{transpile, RouterKind, Target, TranspileOptions};
//! use mirage_circuit::generators::two_local_full;
//! use mirage_topology::CouplingMap;
//!
//! let circ = two_local_full(4, 1, 7);
//! let target = Target::sqrt_iswap(CouplingMap::line(4));
//! let out = transpile(&circ, &target, &TranspileOptions::quick(RouterKind::Mirage, 1))
//!     .expect("transpiles");
//! assert!(out.metrics.depth_estimate > 0.0);
//! ```
//!
//! ---
//! **Owns:** [`target::Target`], [`calibration::Calibration`],
//! [`router::route`], [`trials::route_with_trials`],
//! [`pipeline::transpile`], [`verify::verify_report`].
//! **Paper:** §IV (the MIRAGE router, Algorithm 2, the depth metric) and
//! the §V pipeline; the calibration layer extends §IV-B's duration metric
//! to measured per-edge data.

pub mod calibration;
pub mod layout;
pub mod pipeline;
pub mod placement;
pub mod router;
pub mod target;
pub mod trials;
pub mod verify;

pub use calibration::{Calibration, CalibrationError, EdgeCalibration, QubitCalibration};
pub use layout::Layout;
pub use pipeline::{transpile, RouterKind, TranspileError, TranspileOptions, TranspiledCircuit};
pub use placement::{LayoutStrategy, PlacementContext, StrategyKind, BALANCED_STRATEGY_MIX};
pub use router::{Aggression, RoutedCircuit, RouterConfig};
pub use target::{DurationModel, Target};
pub use trials::{Metric, TrialEngine, TrialOptions, TrialOutcome};
pub use verify::{verify_report, verify_routed, VerifyReport};
