//! Basis translation: rewrite a circuit into `{basis gate, 1Q}` form.
//!
//! The paper adds √iSWAP decomposition rules to Qiskit's equivalence
//! library for final circuit output (§V); here every two-qubit block is
//! numerically decomposed into the basis (depth chosen by the coverage
//! set), with a cache keyed on the (quantized) block matrix so repeated
//! gates — every CX in a circuit, every mirror block — are fitted once.
//!
//! The emitted two-qubit pulse is **exactly the coverage set's basis
//! unitary** — the matrix the local gates were fitted around. `iSWAP^α`
//! bases emit [`Gate::ISwapPow`], CNOT/CZ bases emit [`Gate::Cx`] /
//! [`Gate::Cz`], and anything else is carried verbatim as
//! [`Gate::Unitary2`] (see [`basis_emission`]); an earlier revision emitted
//! `ISwapPow` unconditionally, which silently mistranslated every
//! non-iSWAP-family target.

use crate::decompose::{decompose, DecompOptions};
use mirage_circuit::{Circuit, Gate};
use mirage_coverage::set::{BasisGate, CoverageSet};
use mirage_math::{Mat2, Mat4};
use mirage_weyl::coords::coords_of;
use std::collections::HashMap;

/// Statistics from a translation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslationStats {
    /// Number of basis-gate applications emitted.
    pub pulses: usize,
    /// Worst residual infidelity across all fitted blocks.
    pub worst_infidelity: f64,
    /// Number of unique blocks actually fitted (cache misses).
    pub unique_blocks: usize,
    /// Number of blocks served from the cache.
    pub cache_hits: usize,
}

fn matrix_key(m: &Mat4) -> [i64; 32] {
    let mut key = [0i64; 32];
    let mut idx = 0;
    for row in &m.e {
        for v in row {
            key[idx] = (v.re * 1e9).round() as i64;
            key[idx + 1] = (v.im * 1e9).round() as i64;
            idx += 2;
        }
    }
    key
}

/// Translate `c` into the coverage set's basis gate plus 1Q unitaries.
///
/// Decomposition depth for each block is the coverage set's `min_k`
/// (falling back to one level deeper when the numerical fit misses the
/// `1e−7` infidelity bar — hull inflation can misjudge points right on a
/// region boundary).
pub fn translate_circuit(
    c: &Circuit,
    set: &CoverageSet,
    opts: &DecompOptions,
) -> (Circuit, TranslationStats) {
    let basis = &set.basis;
    let pulse = basis_emission(basis);
    let mut out = Circuit::new(c.n_qubits);
    let mut stats = TranslationStats::default();
    let mut cache: HashMap<[i64; 32], crate::decompose::Decomposition> = HashMap::new();

    for instr in &c.instructions {
        if !instr.gate.is_two_qubit() {
            out.push(instr.gate.clone(), &instr.qubits);
            continue;
        }
        let u = instr.gate.matrix2();
        let key = matrix_key(&u);
        let d = if let Some(hit) = cache.get(&key) {
            stats.cache_hits += 1;
            hit.clone()
        } else {
            let w = coords_of(&u);
            let k0 = set.min_k(&w).unwrap_or(set.max_level().k);
            let mut best = decompose(&u, &basis.unitary, k0, opts);
            let mut k = k0;
            while best.fidelity < 1.0 - 1e-7 && k < set.max_level().k + 1 {
                k += 1;
                let retry = decompose(&u, &basis.unitary, k, opts);
                if retry.fidelity > best.fidelity {
                    best = retry;
                }
            }
            stats.unique_blocks += 1;
            cache.insert(key, best.clone());
            best
        };
        stats.worst_infidelity = stats.worst_infidelity.max(1.0 - d.fidelity);

        // Emit right-to-left: U = L₀·B·L₁·…·B·Lₖ applies Lₖ first.
        let locals = d.locals();
        let (hi, lo) = (instr.qubits[0], instr.qubits[1]);
        for g in (0..=d.k).rev() {
            let (lh, ll) = locals[g];
            push_1q(&mut out, lh, hi);
            push_1q(&mut out, ll, lo);
            if g > 0 {
                out.push(pulse.clone(), &[hi, lo]);
                stats.pulses += 1;
            }
        }
    }

    (merge_1q_runs(&out), stats)
}

/// The circuit-IR gate whose matrix is exactly `basis.unitary` — what the
/// fitted local gates interleave with, so what translation must emit.
/// Recognizes the iSWAP family (by the paper's `duration = α` convention)
/// and the CNOT/CZ bases; any other basis is emitted as an opaque
/// [`Gate::Unitary2`], which stays exact rather than guessing a named
/// gate.
pub fn basis_emission(basis: &BasisGate) -> Gate {
    const TOL: f64 = 1e-12;
    let iswap = Gate::ISwapPow(basis.duration);
    if basis.unitary.approx_eq(&iswap.matrix2(), TOL) {
        return iswap;
    }
    for named in [Gate::Cx, Gate::Cz] {
        if basis.unitary.approx_eq(&named.matrix2(), TOL) {
            return named;
        }
    }
    Gate::Unitary2(basis.unitary)
}

fn push_1q(c: &mut Circuit, m: Mat2, q: usize) {
    if m.approx_eq_up_to_phase(&Mat2::identity(), 1e-10) {
        return;
    }
    c.push(Gate::Unitary1(m), &[q]);
}

/// Merge consecutive single-qubit unitaries on the same wire and drop the
/// ones that collapse to identity.
pub fn merge_1q_runs(c: &Circuit) -> Circuit {
    let mut out = Circuit::new(c.n_qubits);
    let mut pending: Vec<Option<Mat2>> = vec![None; c.n_qubits];
    let flush = |out: &mut Circuit, pending: &mut Vec<Option<Mat2>>, q: usize| {
        if let Some(m) = pending[q].take() {
            if !m.approx_eq_up_to_phase(&Mat2::identity(), 1e-10) {
                out.push(Gate::Unitary1(m), &[q]);
            }
        }
    };
    for instr in &c.instructions {
        match instr.qubits.len() {
            1 => {
                let q = instr.qubits[0];
                let m = instr.gate.matrix1();
                pending[q] = Some(match pending[q] {
                    Some(acc) => m.mul(&acc),
                    None => m,
                });
            }
            2 => {
                for &q in &instr.qubits {
                    flush(&mut out, &mut pending, q);
                }
                out.push(instr.gate.clone(), &instr.qubits);
            }
            _ => unreachable!(),
        }
    }
    for q in 0..c.n_qubits {
        flush(&mut out, &mut pending, q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_circuit::sim::equivalent_on_zero;
    use mirage_coverage::set::{BasisGate, CoverageOptions};

    fn build_set(basis: BasisGate, seed: u64) -> CoverageSet {
        let opts = CoverageOptions {
            max_k: 3,
            samples_per_k: 700,
            inflation: 0.012,
            mirrors: false,
            seed,
        };
        CoverageSet::build(basis, &opts)
    }

    fn sqrt_iswap_set() -> CoverageSet {
        build_set(BasisGate::iswap_root(2), 71)
    }

    fn opts(seed: u64) -> DecompOptions {
        DecompOptions {
            restarts: 8,
            evals_per_restart: 8000,
            infidelity_target: 1e-9,
            seed,
        }
    }

    #[test]
    fn single_cx_translates_to_two_pulses() {
        let set = sqrt_iswap_set();
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let (t, stats) = translate_circuit(&c, &set, &opts(1));
        assert_eq!(stats.pulses, 2, "CNOT = 2 √iSWAPs (paper Fig. 1a)");
        assert!(stats.worst_infidelity < 1e-6);
        assert!(equivalent_on_zero(&c, &t, None));
        // Only basis + 1Q gates remain.
        for i in &t.instructions {
            assert!(
                matches!(i.gate, Gate::ISwapPow(_) | Gate::Unitary1(_)),
                "unexpected gate {:?}",
                i.gate.name()
            );
        }
    }

    #[test]
    fn swap_translates_to_three_pulses() {
        let set = sqrt_iswap_set();
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let (t, stats) = translate_circuit(&c, &set, &opts(2));
        assert_eq!(stats.pulses, 3, "SWAP = 3 √iSWAPs");
        assert!(equivalent_on_zero(&c, &t, None));
    }

    #[test]
    fn cache_hits_on_repeated_gates() {
        let set = sqrt_iswap_set();
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(0, 1);
        let (_, stats) = translate_circuit(&c, &set, &opts(3));
        assert_eq!(stats.unique_blocks, 1, "all CX share one fit");
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.pulses, 6);
    }

    #[test]
    fn bell_circuit_equivalent_after_translation() {
        let set = sqrt_iswap_set();
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let (t, _) = translate_circuit(&c, &set, &opts(4));
        assert!(equivalent_on_zero(&c, &t, None));
    }

    #[test]
    fn merge_1q_collapses_runs() {
        let mut c = Circuit::new(1);
        c.h(0).h(0); // identity
        let m = merge_1q_runs(&c);
        assert_eq!(m.instructions.len(), 0);
        let mut c2 = Circuit::new(2);
        c2.h(0).t(0).cx(0, 1);
        let m2 = merge_1q_runs(&c2);
        assert_eq!(m2.instructions.len(), 2); // merged 1Q + cx
        assert!(equivalent_on_zero(&c2, &m2, None));
    }

    #[test]
    fn basis_emission_matches_every_stock_basis_exactly() {
        // The emitted gate's matrix must equal the basis unitary the local
        // fits interleave with — exactly, not up to phase.
        for (basis, expected) in [
            (BasisGate::iswap_root(1), Gate::ISwapPow(1.0)),
            (BasisGate::iswap_root(2), Gate::ISwapPow(0.5)),
            (BasisGate::iswap_root(3), Gate::ISwapPow(1.0 / 3.0)),
            (BasisGate::cnot(), Gate::Cx),
            (BasisGate::cz(), Gate::Cz),
        ] {
            let gate = basis_emission(&basis);
            assert_eq!(gate, expected, "basis {}", basis.name);
            assert!(
                gate.matrix2().approx_eq(&basis.unitary, 1e-12),
                "basis {}: emission must be the exact basis unitary",
                basis.name
            );
        }
        // An exotic basis stays exact through the opaque fallback.
        let exotic = BasisGate {
            name: "cns".into(),
            unitary: mirage_gates::cns(),
            duration: 1.0,
            coord: mirage_weyl::coords::coords_of(&mirage_gates::cns()),
        };
        let gate = basis_emission(&exotic);
        assert!(matches!(gate, Gate::Unitary2(_)));
        assert!(gate.matrix2().approx_eq(&exotic.unitary, 1e-12));
    }

    #[test]
    fn cnot_basis_translation_is_correct_and_pulse_counted() {
        // Regression: translation used to emit ISwapPow for *every* basis,
        // so a CNOT-target translation produced a circuit that was not
        // equivalent to its input.
        let set = build_set(BasisGate::cnot(), 72);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.3, 1).swap(1, 2).cx(0, 2);
        let (t, stats) = translate_circuit(&c, &set, &opts(6));
        // CNOT = 1 application in its own basis, SWAP = 3.
        assert_eq!(stats.pulses, 1 + 3 + 1, "{stats:?}");
        assert!(stats.worst_infidelity < 1e-5, "{stats:?}");
        assert!(equivalent_on_zero(&c, &t, None));
        for i in &t.instructions {
            assert!(
                matches!(i.gate, Gate::Cx | Gate::Unitary1(_)),
                "unexpected gate {:?} for a CNOT target",
                i.gate.name()
            );
        }
    }

    #[test]
    fn cz_basis_translation_is_correct_and_pulse_counted() {
        let set = build_set(BasisGate::cz(), 73);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).swap(1, 2);
        let (t, stats) = translate_circuit(&c, &set, &opts(7));
        assert_eq!(stats.pulses, 1 + 3, "{stats:?}");
        assert!(stats.worst_infidelity < 1e-5, "{stats:?}");
        assert!(equivalent_on_zero(&c, &t, None));
        for i in &t.instructions {
            assert!(
                matches!(i.gate, Gate::Cz | Gate::Unitary1(_)),
                "unexpected gate {:?} for a CZ target",
                i.gate.name()
            );
        }
    }

    #[test]
    fn translation_preserves_three_qubit_semantics() {
        let set = sqrt_iswap_set();
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.4, 1).cx(1, 2).swap(0, 2);
        let (t, stats) = translate_circuit(&c, &set, &opts(5));
        assert!(stats.worst_infidelity < 1e-5, "{stats:?}");
        assert!(equivalent_on_zero(&c, &t, None));
    }
}
