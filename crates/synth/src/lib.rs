//! Numerical decomposition into a basis gate, basis translation of whole
//! circuits, and the decoherence error model.
//!
//! This crate is the "decomposition" half of the paper's co-design: given a
//! two-qubit target and a basis gate (√iSWAP and friends), find the
//! interleaved single-qubit dressing that realizes — or best approximates —
//! the target with `k` basis applications (paper §III-A "numerical
//! decomposition"). On top of that:
//!
//! * [`translate`] — rewrite a routed circuit into `{basis, 1Q}` form,
//!   caching one ansatz fit per canonical-coordinate class and re-dressing
//!   it with per-instance KAK locals (the pulse sequences of paper Fig. 8).
//! * [`fidelity`] — the decoherence model of Eq. 2 applied to circuits:
//!   gate fidelity `e^{−duration/T1}`, circuit fidelity from the total gate
//!   time, and duration-weighted critical paths.
//!
//! ---
//! **Owns:** [`decompose::decompose`], [`translate::translate_circuit`],
//! [`approx_translate`], [`fidelity::CircuitFidelity`].
//! **Paper:** §III-A numerical decomposition, the Eq. 2 decoherence
//! model, and the pulse sequences of Fig. 8.

pub mod approx_translate;
pub mod decompose;
pub mod fidelity;
pub mod translate;

pub use approx_translate::{translate_circuit_approx, ApproxTranslationStats};
pub use decompose::{decompose, DecompOptions, Decomposition};
pub use fidelity::CircuitFidelity;
pub use translate::{translate_circuit, TranslationStats};
