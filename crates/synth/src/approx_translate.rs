//! Fidelity-aware (approximate) basis translation — the circuit-level
//! counterpart of the paper's Algorithm 1.
//!
//! For each two-qubit block, the exact depth `k` from the coverage set sets
//! a fidelity threshold `F(k·duration)`; every cheaper depth is tried with
//! the numerical optimizer, and the cheapest one whose *total* fidelity
//! (decomposition × decoherence) beats the threshold wins. This is how the
//! paper combines approximation with mirrors for the ~9% infidelity
//! reduction headline.

use crate::decompose::{decompose, DecompOptions, Decomposition};
use crate::translate::merge_1q_runs;
use mirage_circuit::{Circuit, Gate};
use mirage_coverage::haar::FidelityModel;
use mirage_coverage::set::CoverageSet;
use mirage_math::Mat2;
use mirage_weyl::coords::coords_of;
use std::collections::HashMap;

/// Statistics from an approximate translation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproxTranslationStats {
    /// Basis pulses emitted.
    pub pulses: usize,
    /// Blocks where a cheaper approximate decomposition was accepted.
    pub approximated_blocks: usize,
    /// Total blocks translated.
    pub total_blocks: usize,
    /// Product of the chosen decompositions' fidelities (the approximation
    /// part of circuit infidelity; decoherence comes on top).
    pub decomposition_fidelity: f64,
    /// Sum of emitted pulse durations.
    pub pulse_time: f64,
}

/// Translate with a per-block fidelity trade-off (see module docs).
pub fn translate_circuit_approx(
    c: &Circuit,
    set: &CoverageSet,
    model: &FidelityModel,
    opts: &DecompOptions,
) -> (Circuit, ApproxTranslationStats) {
    let basis = &set.basis;
    let mut out = Circuit::new(c.n_qubits);
    let mut stats = ApproxTranslationStats {
        decomposition_fidelity: 1.0,
        ..Default::default()
    };
    let mut cache: HashMap<[i64; 32], (Decomposition, bool)> = HashMap::new();

    for instr in &c.instructions {
        if !instr.gate.is_two_qubit() {
            out.push(instr.gate.clone(), &instr.qubits);
            continue;
        }
        stats.total_blocks += 1;
        let u = instr.gate.matrix2();
        let key = matrix_key(&u);
        let (d, approximated) = cache
            .entry(key)
            .or_insert_with(|| {
                let w = coords_of(&u);
                let exact_k = set.min_k(&w).unwrap_or(set.max_level().k);
                let exact = decompose(&u, &basis.unitary, exact_k, opts);
                let threshold =
                    exact.fidelity * model.circuit_fidelity(exact_k as f64 * basis.duration);
                // Try cheaper depths, cheapest first.
                for k in 1..exact_k {
                    let trial = decompose(&u, &basis.unitary, k, opts);
                    let total = trial.fidelity * model.circuit_fidelity(k as f64 * basis.duration);
                    if total > threshold {
                        return (trial, true);
                    }
                }
                (exact, false)
            })
            .clone();

        if approximated {
            stats.approximated_blocks += 1;
        }
        stats.decomposition_fidelity *= d.fidelity;
        let locals = d.locals();
        let (hi, lo) = (instr.qubits[0], instr.qubits[1]);
        for g in (0..=d.k).rev() {
            let (lh, ll) = locals[g];
            push_1q(&mut out, lh, hi);
            push_1q(&mut out, ll, lo);
            if g > 0 {
                out.push(Gate::ISwapPow(basis.duration), &[hi, lo]);
                stats.pulses += 1;
                stats.pulse_time += basis.duration;
            }
        }
    }

    (merge_1q_runs(&out), stats)
}

fn matrix_key(m: &mirage_math::Mat4) -> [i64; 32] {
    let mut key = [0i64; 32];
    let mut idx = 0;
    for row in &m.e {
        for v in row {
            key[idx] = (v.re * 1e9).round() as i64;
            key[idx + 1] = (v.im * 1e9).round() as i64;
            idx += 2;
        }
    }
    key
}

fn push_1q(c: &mut Circuit, m: Mat2, q: usize) {
    if m.approx_eq_up_to_phase(&Mat2::identity(), 1e-10) {
        return;
    }
    c.push(Gate::Unitary1(m), &[q]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_circuit::sim::{run, State};
    use mirage_coverage::set::{BasisGate, CoverageOptions};
    use mirage_gates::can;
    use mirage_math::PI_4;

    fn sqrt_iswap_set() -> CoverageSet {
        CoverageSet::build(
            BasisGate::iswap_root(2),
            &CoverageOptions {
                max_k: 3,
                samples_per_k: 700,
                inflation: 0.012,
                mirrors: false,
                seed: 0xA712,
            },
        )
    }

    fn opts(seed: u64) -> DecompOptions {
        DecompOptions {
            restarts: 5,
            evals_per_restart: 5000,
            infidelity_target: 1e-9,
            seed,
        }
    }

    #[test]
    fn exact_blocks_stay_exact() {
        // CNOT has an exact k=2 fit; nothing cheaper can beat the
        // threshold, so no approximation happens.
        let set = sqrt_iswap_set();
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let (t, stats) =
            translate_circuit_approx(&c, &set, &FidelityModel::paper_default(), &opts(1));
        assert_eq!(stats.approximated_blocks, 0);
        assert_eq!(stats.pulses, 2);
        assert!(stats.decomposition_fidelity > 1.0 - 1e-6);
        assert!(mirage_circuit::sim::equivalent_on_zero(&c, &t, None));
    }

    #[test]
    fn near_boundary_gate_gets_approximated() {
        // A gate just outside the k=2 region (slightly more SWAP-like than
        // any 2-pulse circuit can express) with a very noisy model: the
        // 2-pulse approximation wins over the exact 3-pulse circuit.
        let noisy = FidelityModel { t1: 4.0 }; // extremely short-lived qubits
        let set = sqrt_iswap_set();
        let mut c = Circuit::new(2);
        let w = (PI_4, PI_4, 0.35 * PI_4); // near the k=2 boundary, inside k=3
        c.push(Gate::Unitary2(can(w.0, w.1, w.2)), &[0, 1]);
        let (_, stats) = translate_circuit_approx(&c, &set, &noisy, &opts(2));
        assert_eq!(stats.total_blocks, 1);
        assert_eq!(
            stats.approximated_blocks, 1,
            "noisy model should prefer the cheaper approximate fit"
        );
        assert_eq!(stats.pulses, 2);
        assert!(stats.decomposition_fidelity < 1.0 - 1e-6);
        assert!(stats.decomposition_fidelity > 0.8);
    }

    #[test]
    fn good_qubits_prefer_exact() {
        // Same boundary gate, but with the paper's T1: the exact 3-pulse
        // circuit wins (0.5 extra duration only costs ~0.5% fidelity).
        let set = sqrt_iswap_set();
        let mut c = Circuit::new(2);
        c.push(Gate::Unitary2(can(PI_4, PI_4, 0.35 * PI_4)), &[0, 1]);
        let (t, stats) =
            translate_circuit_approx(&c, &set, &FidelityModel::paper_default(), &opts(3));
        assert_eq!(stats.approximated_blocks, 0);
        assert_eq!(stats.pulses, 3);
        // And the output is the exact gate.
        let sa = run(&c);
        let sb: State = run(&t);
        assert!(sa.fidelity(&sb) > 1.0 - 1e-6);
    }

    #[test]
    fn cache_shares_decisions() {
        let set = sqrt_iswap_set();
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(0, 1);
        let (_, stats) =
            translate_circuit_approx(&c, &set, &FidelityModel::paper_default(), &opts(4));
        assert_eq!(stats.total_blocks, 3);
        assert_eq!(stats.pulses, 6);
    }
}
