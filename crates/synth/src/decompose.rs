//! Numerical decomposition of a two-qubit target into `k` applications of a
//! basis gate interleaved with single-qubit unitaries (paper §III-A).
//!
//! The ansatz is the Cartan-style ladder of paper Fig. 2:
//!
//! ```text
//! (L₀ᵃ⊗L₀ᵇ) · B · (L₁ᵃ⊗L₁ᵇ) · B · … · B · (Lₖᵃ⊗Lₖᵇ)
//! ```
//!
//! with `6(k+1)` real parameters (a ZYZ triple per local). Parameters are
//! fitted by Nelder–Mead restarts against the average-gate-fidelity
//! objective; the fit is phase-insensitive.

use mirage_math::optimize::{nelder_mead, NmOptions};
use mirage_math::{Mat4, Rng};

use mirage_gates::oneq::u_zyz;

/// Options for [`decompose`].
#[derive(Debug, Clone, Copy)]
pub struct DecompOptions {
    /// Number of Nelder–Mead restarts from random initial parameters.
    pub restarts: usize,
    /// Objective-evaluation budget per restart.
    pub evals_per_restart: usize,
    /// Stop early once `1 − fidelity` falls below this.
    pub infidelity_target: f64,
    /// RNG seed for the restart initializations.
    pub seed: u64,
}

impl Default for DecompOptions {
    fn default() -> Self {
        DecompOptions {
            restarts: 6,
            evals_per_restart: 6000,
            infidelity_target: 1e-9,
            seed: 0xDEC0,
        }
    }
}

/// A fitted decomposition.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Number of basis-gate applications.
    pub k: usize,
    /// Fitted parameters: `6(k+1)` ZYZ angles (see module docs for layout).
    pub params: Vec<f64>,
    /// Average gate fidelity of the fit (1.0 = exact up to phase).
    pub fidelity: f64,
}

impl Decomposition {
    /// Rebuild the ansatz unitary from the fitted parameters.
    pub fn unitary(&self, basis: &Mat4) -> Mat4 {
        ansatz_unitary(basis, self.k, &self.params)
    }

    /// The interleaved local pairs as 2×2 matrices: `k+1` pairs
    /// `(high, low)`, outermost first.
    pub fn locals(&self) -> Vec<(mirage_math::Mat2, mirage_math::Mat2)> {
        (0..=self.k)
            .map(|g| {
                let o = 6 * g;
                (
                    u_zyz(self.params[o], self.params[o + 1], self.params[o + 2]),
                    u_zyz(self.params[o + 3], self.params[o + 4], self.params[o + 5]),
                )
            })
            .collect()
    }
}

/// Build the ansatz unitary `L₀·B·L₁·B·…·B·Lₖ` (applied right-to-left, so
/// `L₀` is the *last* layer in time).
pub fn ansatz_unitary(basis: &Mat4, k: usize, params: &[f64]) -> Mat4 {
    assert_eq!(params.len(), 6 * (k + 1), "parameter count mismatch");
    let local = |g: usize| {
        let o = 6 * g;
        Mat4::kron(
            &u_zyz(params[o], params[o + 1], params[o + 2]),
            &u_zyz(params[o + 3], params[o + 4], params[o + 5]),
        )
    };
    let mut u = local(0);
    for g in 1..=k {
        u = u.mul(basis).mul(&local(g));
    }
    u
}

/// Fit a depth-`k` ansatz of `basis` to `target`.
///
/// Always returns the best fit found; check [`Decomposition::fidelity`]
/// against your own threshold to decide whether it counts as exact.
pub fn decompose(target: &Mat4, basis: &Mat4, k: usize, opts: &DecompOptions) -> Decomposition {
    let mut rng = Rng::new(opts.seed);
    let dim = 6 * (k + 1);
    let mut best: Option<Decomposition> = None;

    for _restart in 0..opts.restarts {
        let x0: Vec<f64> = (0..dim)
            .map(|_| rng.uniform_range(0.0, std::f64::consts::TAU))
            .collect();
        let objective = |x: &[f64]| {
            let v = ansatz_unitary(basis, k, x);
            1.0 - v.average_gate_fidelity(target)
        };
        let r = nelder_mead(
            objective,
            &x0,
            &NmOptions {
                max_evals: opts.evals_per_restart,
                f_tol: opts.infidelity_target / 10.0,
                step: 0.8,
            },
        );
        let fid = 1.0 - r.fx;
        let better = best.as_ref().map(|b| fid > b.fidelity).unwrap_or(true);
        if better {
            best = Some(Decomposition {
                k,
                params: r.x,
                fidelity: fid,
            });
        }
        if let Some(b) = &best {
            if 1.0 - b.fidelity < opts.infidelity_target {
                break;
            }
        }
    }
    best.expect("at least one restart ran")
}

/// Convenience: best achievable fidelity for a depth-`k` fit (the callback
/// shape expected by `mirage_coverage::approx` / Algorithm 1).
pub fn fit_fidelity(target: &Mat4, basis: &Mat4, k: usize, opts: &DecompOptions) -> f64 {
    decompose(target, basis, k, opts).fidelity
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_gates::{cnot, cns, haar_2q, iswap, sqrt_iswap, swap};

    fn quick_opts(seed: u64) -> DecompOptions {
        DecompOptions {
            restarts: 8,
            evals_per_restart: 8000,
            infidelity_target: 1e-8,
            seed,
        }
    }

    #[test]
    fn cnot_from_two_sqrt_iswap() {
        // Paper Fig. 1a: CNOT = two √iSWAPs plus locals.
        let d = decompose(&cnot(), &sqrt_iswap(), 2, &quick_opts(1));
        assert!(
            d.fidelity > 1.0 - 1e-6,
            "CNOT @ k=2 fidelity = {}",
            d.fidelity
        );
        let rec = d.unitary(&sqrt_iswap());
        assert!(rec.average_gate_fidelity(&cnot()) > 1.0 - 1e-6);
    }

    #[test]
    fn cns_from_two_sqrt_iswap() {
        // Paper Fig. 1b: CNOT+SWAP also needs only two √iSWAPs.
        let d = decompose(&cns(), &sqrt_iswap(), 2, &quick_opts(2));
        assert!(
            d.fidelity > 1.0 - 1e-6,
            "CNS @ k=2 fidelity = {}",
            d.fidelity
        );
    }

    #[test]
    fn iswap_from_two_sqrt_iswap() {
        let d = decompose(&iswap(), &sqrt_iswap(), 2, &quick_opts(3));
        assert!(d.fidelity > 1.0 - 1e-6, "fidelity = {}", d.fidelity);
    }

    #[test]
    fn swap_needs_three_sqrt_iswap() {
        let two = decompose(&swap(), &sqrt_iswap(), 2, &quick_opts(4));
        assert!(
            two.fidelity < 1.0 - 1e-3,
            "SWAP must NOT fit k=2 (got {})",
            two.fidelity
        );
        let three = decompose(&swap(), &sqrt_iswap(), 3, &quick_opts(5));
        assert!(
            three.fidelity > 1.0 - 1e-6,
            "SWAP @ k=3 fidelity = {}",
            three.fidelity
        );
    }

    #[test]
    fn cnot_not_reachable_with_one_application() {
        let d = decompose(&cnot(), &sqrt_iswap(), 1, &quick_opts(6));
        assert!(d.fidelity < 0.999, "fidelity = {}", d.fidelity);
    }

    #[test]
    fn haar_targets_at_k3() {
        // Three √iSWAPs cover the whole chamber: any Haar target fits.
        let mut rng = Rng::new(77);
        for i in 0..3 {
            let target = haar_2q(&mut rng);
            let d = decompose(&target, &sqrt_iswap(), 3, &quick_opts(10 + i));
            assert!(
                d.fidelity > 1.0 - 1e-4,
                "target {i} @ k=3 fidelity = {}",
                d.fidelity
            );
        }
    }

    #[test]
    fn locals_are_su2() {
        let d = decompose(&cnot(), &sqrt_iswap(), 2, &quick_opts(8));
        for (a, b) in d.locals() {
            assert!(a.is_unitary(1e-9));
            assert!(b.is_unitary(1e-9));
        }
    }

    #[test]
    fn ansatz_parameter_count_checked() {
        let r = std::panic::catch_unwind(|| {
            ansatz_unitary(&sqrt_iswap(), 2, &[0.0; 5]);
        });
        assert!(r.is_err());
    }

    #[test]
    fn fit_fidelity_matches_decompose() {
        let opts = quick_opts(9);
        let f = fit_fidelity(&iswap(), &sqrt_iswap(), 2, &opts);
        let d = decompose(&iswap(), &sqrt_iswap(), 2, &opts);
        assert!((f - d.fidelity).abs() < 1e-12);
    }
}
