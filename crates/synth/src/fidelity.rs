//! The decoherence error model (paper Eq. 2) applied to circuits.
//!
//! Gate fidelity decays exponentially in gate duration over the qubit
//! lifetime: `F_Q = e^{−duration/T1}` — normalized so an iSWAP (duration
//! 1.0) sits at 99%. A circuit's fidelity is the product of its gate
//! fidelities, i.e. `e^{−Σ durations / T1}`; the paper's *depth* metric is
//! the duration-weighted critical path.

use mirage_circuit::{Circuit, Gate, Instruction};
use mirage_coverage::haar::FidelityModel;
use mirage_coverage::set::CoverageSet;
use mirage_weyl::coords::coords_of;

/// Duration of an instruction in normalized units (iSWAP = 1.0), using the
/// coverage set's basis to cost opaque two-qubit blocks.
///
/// Named gates with well-known classes are costed through the coverage set
/// too, so SWAPs inserted by routing pay their real decomposition price
/// (3 applications of √iSWAP = 1.5 units).
pub fn instruction_duration(instr: &Instruction, set: &CoverageSet) -> f64 {
    match &instr.gate {
        g if !g.is_two_qubit() => 0.0,
        g => {
            let w = coords_of(&g.matrix2());
            set.cost_or_max(&w)
        }
    }
}

/// Fidelity and duration summary of a circuit under the Eq. 2 model.
#[derive(Debug, Clone, Copy)]
pub struct CircuitFidelity {
    /// Sum of all gate durations.
    pub total_duration: f64,
    /// Duration-weighted critical path (the paper's depth metric).
    pub critical_path: f64,
    /// `e^{−total_duration/T1}` — product of gate fidelities.
    pub fidelity: f64,
}

/// Evaluate a circuit against the error model, costing each two-qubit gate
/// by its minimum decomposition cost in `set`'s basis.
pub fn circuit_fidelity(c: &Circuit, set: &CoverageSet, model: &FidelityModel) -> CircuitFidelity {
    let mut total = 0.0;
    for instr in &c.instructions {
        total += instruction_duration(instr, set);
    }
    let critical = c.weighted_depth(|i| instruction_duration(i, set));
    CircuitFidelity {
        total_duration: total,
        critical_path: critical,
        fidelity: model.circuit_fidelity(total),
    }
}

/// Duration of a circuit already expressed in the basis: every `ISwapPow`
/// (or explicit basis gate) costs its fraction, opaque blocks are rejected.
///
/// # Errors
///
/// Returns `Err` with the offending gate name if the circuit still contains
/// two-qubit gates other than `ISwapPow`.
pub fn pulse_duration(c: &Circuit) -> Result<f64, &'static str> {
    let mut per_gate = Vec::with_capacity(c.instructions.len());
    for instr in &c.instructions {
        let d = match &instr.gate {
            Gate::ISwapPow(a) => a.abs(),
            Gate::ISwap => 1.0,
            g if !g.is_two_qubit() => 0.0,
            g => return Err(g.name()),
        };
        per_gate.push(d);
    }
    let i = std::cell::Cell::new(0usize);
    Ok(c.weighted_depth(|_| {
        let d = per_gate[i.get()];
        i.set(i.get() + 1);
        d
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_coverage::set::{BasisGate, CoverageOptions};

    fn set() -> CoverageSet {
        let opts = CoverageOptions {
            max_k: 3,
            samples_per_k: 700,
            inflation: 0.012,
            mirrors: false,
            seed: 61,
        };
        CoverageSet::build(BasisGate::iswap_root(2), &opts)
    }

    #[test]
    fn cnot_costs_one_unit() {
        let set = set();
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let f = circuit_fidelity(&c, &set, &FidelityModel::paper_default());
        // CNOT = 2 √iSWAPs = 1.0 normalized units.
        assert!((f.total_duration - 1.0).abs() < 1e-9);
        assert!((f.fidelity - 0.99).abs() < 1e-6);
    }

    #[test]
    fn swap_costs_1_5_units() {
        let set = set();
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let f = circuit_fidelity(&c, &set, &FidelityModel::paper_default());
        assert!((f.total_duration - 1.5).abs() < 1e-9);
    }

    #[test]
    fn critical_path_vs_total() {
        let set = set();
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3); // parallel: critical 1.0, total 2.0
        let f = circuit_fidelity(&c, &set, &FidelityModel::paper_default());
        assert!((f.critical_path - 1.0).abs() < 1e-9);
        assert!((f.total_duration - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_qubit_gates_free() {
        let set = set();
        let mut c = Circuit::new(2);
        c.h(0).rz(0.3, 1).h(1);
        let f = circuit_fidelity(&c, &set, &FidelityModel::paper_default());
        assert_eq!(f.total_duration, 0.0);
        assert!((f.fidelity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pulse_duration_counts_basis_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::ISwapPow(0.5), &[0, 1]);
        c.push(Gate::ISwapPow(0.5), &[0, 1]);
        assert!((pulse_duration(&c).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pulse_duration_rejects_untranslated() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        assert_eq!(pulse_duration(&c), Err("cx"));
    }
}

/// Per-qubit decoherence model: each physical qubit has its own lifetime
/// (real devices are heterogeneous; the paper's Eq. 2 is the uniform
/// special case). A two-qubit gate of duration `d` on qubits `(a, b)`
/// contributes `exp(−d/2·(1/T1ₐ + 1/T1_b))` — both qubits decay for the
/// full gate, averaged into the pair fidelity.
#[derive(Debug, Clone)]
pub struct HeterogeneousModel {
    /// Lifetime per physical qubit (normalized units; iSWAP duration 1.0).
    pub t1: Vec<f64>,
}

impl HeterogeneousModel {
    /// A uniform model equivalent to [`FidelityModel`] with the same `t1`.
    pub fn uniform(n_qubits: usize, t1: f64) -> HeterogeneousModel {
        HeterogeneousModel {
            t1: vec![t1; n_qubits],
        }
    }

    /// Fidelity of one gate of duration `d` on the given qubits.
    pub fn gate_fidelity(&self, duration: f64, qubits: &[usize]) -> f64 {
        let rate: f64 =
            qubits.iter().map(|&q| 1.0 / self.t1[q]).sum::<f64>() / qubits.len().max(1) as f64;
        (-duration * rate).exp()
    }

    /// Product fidelity of a circuit, costing each two-qubit gate through
    /// the coverage set as in [`circuit_fidelity`].
    pub fn circuit_fidelity(&self, c: &Circuit, set: &CoverageSet) -> f64 {
        let mut log_f = 0.0;
        for instr in &c.instructions {
            let d = instruction_duration(instr, set);
            if d > 0.0 {
                log_f += self.gate_fidelity(d, &instr.qubits).ln();
            }
        }
        log_f.exp()
    }
}

#[cfg(test)]
mod het_tests {
    use super::*;
    use mirage_coverage::set::{BasisGate, CoverageOptions};

    fn set() -> CoverageSet {
        CoverageSet::build(
            BasisGate::iswap_root(2),
            &CoverageOptions {
                max_k: 3,
                samples_per_k: 700,
                inflation: 0.012,
                mirrors: false,
                seed: 0x4E7,
            },
        )
    }

    #[test]
    fn uniform_matches_global_model() {
        let set = set();
        let model = FidelityModel::paper_default();
        let het = HeterogeneousModel::uniform(3, model.t1);
        let mut c = Circuit::new(3);
        c.cx(0, 1).swap(1, 2).cx(0, 1);
        let global = circuit_fidelity(&c, &set, &model).fidelity;
        let per_qubit = het.circuit_fidelity(&c, &set);
        assert!((global - per_qubit).abs() < 1e-9, "{global} vs {per_qubit}");
    }

    #[test]
    fn bad_qubit_hurts_only_when_used() {
        let set = set();
        let mut het = HeterogeneousModel::uniform(3, 100.0);
        het.t1[2] = 5.0; // one terrible qubit
        let mut avoid = Circuit::new(3);
        avoid.cx(0, 1);
        let mut touch = Circuit::new(3);
        touch.cx(0, 2);
        let f_avoid = het.circuit_fidelity(&avoid, &set);
        let f_touch = het.circuit_fidelity(&touch, &set);
        assert!(f_avoid > f_touch + 0.01, "{f_avoid} vs {f_touch}");
    }

    #[test]
    fn single_qubit_gates_free_in_het_model() {
        let set = set();
        let het = HeterogeneousModel::uniform(2, 50.0);
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        assert!((het.circuit_fidelity(&c, &set) - 1.0).abs() < 1e-12);
    }
}
