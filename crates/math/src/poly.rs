//! Complex polynomial root finding.
//!
//! The Weyl-coordinate computation needs all four eigenvalues of a 4×4
//! complex matrix, which we obtain as the roots of its characteristic
//! polynomial. Durand–Kerner (Weierstrass) iteration finds all roots of a
//! monic polynomial simultaneously and behaves well for the unitary spectra
//! we feed it (roots on the unit circle, possibly repeated); we finish with
//! a few Newton polish steps per root.

use crate::Complex64;

/// Evaluate a monic polynomial with the given lower-order coefficients
/// (`coeffs[k]` multiplies `z^k`, leading coefficient 1 implied) at `z`.
pub fn eval_monic(coeffs: &[Complex64], z: Complex64) -> Complex64 {
    // Horner: ((1·z + c_{n-1})·z + ... )·z + c_0
    let mut acc = Complex64::ONE;
    for &c in coeffs.iter().rev() {
        acc = acc * z + c;
    }
    acc
}

/// Derivative of the same monic polynomial at `z`.
pub fn eval_monic_deriv(coeffs: &[Complex64], z: Complex64) -> Complex64 {
    let n = coeffs.len();
    let mut acc = Complex64::real(n as f64);
    for k in (1..n).rev() {
        acc = acc * z + coeffs[k] * (k as f64);
    }
    acc
}

/// Find all roots of the monic polynomial `z^n + c_{n-1} z^{n-1} + … + c_0`
/// given `coeffs = [c_0, …, c_{n-1}]`.
///
/// Uses Durand–Kerner iteration from non-symmetric starting points, followed
/// by Newton polishing. Handles `n ≤ 8`; the workspace only uses `n = 4`.
///
/// # Panics
///
/// Panics if `coeffs` is empty.
pub fn roots_monic(coeffs: &[Complex64]) -> Vec<Complex64> {
    let n = coeffs.len();
    assert!(n >= 1, "roots_monic needs at least degree 1");
    if n == 1 {
        return vec![-coeffs[0]];
    }
    if n == 2 {
        return quadratic_roots(coeffs[1], coeffs[0]);
    }

    // Initial guesses: points on a circle of radius ≈ root magnitude bound,
    // rotated by an irrational-ish offset to break symmetry.
    let bound = 1.0 + coeffs.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
    let mut zs: Vec<Complex64> = (0..n)
        .map(|k| {
            Complex64::from_polar(
                bound * 0.9,
                0.4 + std::f64::consts::TAU * k as f64 / n as f64,
            )
        })
        .collect();

    for _iter in 0..200 {
        let mut max_step = 0.0f64;
        for i in 0..n {
            let zi = zs[i];
            let mut denom = Complex64::ONE;
            for (j, &zj) in zs.iter().enumerate() {
                if j != i {
                    denom *= zi - zj;
                }
            }
            if denom.abs() < 1e-300 {
                // Perturb collided estimates.
                zs[i] = zi + Complex64::new(1e-8, 1e-8);
                max_step = f64::MAX;
                continue;
            }
            let step = eval_monic(coeffs, zi) / denom;
            zs[i] = zi - step;
            max_step = max_step.max(step.abs());
        }
        if max_step < 1e-14 {
            break;
        }
    }

    // Newton polish for extra accuracy.
    for z in zs.iter_mut() {
        for _ in 0..4 {
            let f = eval_monic(coeffs, *z);
            let df = eval_monic_deriv(coeffs, *z);
            if df.abs() < 1e-14 {
                break;
            }
            let step = f / df;
            if !step.is_finite() || step.abs() > 1.0 {
                break;
            }
            *z -= step;
        }
    }
    zs
}

/// Roots of the monic quadratic `z² + b z + c`, numerically stable form.
pub fn quadratic_roots(b: Complex64, c: Complex64) -> Vec<Complex64> {
    let disc = (b * b - c * 4.0).sqrt();
    // Choose sign to avoid cancellation: q = -(b + sign·disc)/2 with
    // sign matching b's direction.
    let s = if (b + disc).abs() >= (b - disc).abs() {
        b + disc
    } else {
        b - disc
    };
    if s.abs() < 1e-300 {
        // b ≈ disc ≈ 0: double root at 0... or pure ±sqrt(-c).
        let r = (-c + Complex64::ZERO).sqrt();
        return vec![r, -r];
    }
    let q = s.scale(-0.5);
    vec![q, c / q]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn poly_from_roots(roots: &[Complex64]) -> Vec<Complex64> {
        // Expand Π (z - r_k) into monic coefficients [c_0..c_{n-1}].
        let mut coeffs = vec![Complex64::ONE]; // constant poly 1
        for &r in roots {
            let mut next = vec![Complex64::ZERO; coeffs.len() + 1];
            for (k, &c) in coeffs.iter().enumerate() {
                next[k + 1] += c;
                next[k] -= c * r;
            }
            coeffs = next;
        }
        // coeffs currently includes the leading 1; strip it.
        coeffs.pop();
        coeffs
    }

    fn assert_same_multiset(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        let mut used = vec![false; b.len()];
        for &x in a {
            let mut found = false;
            for (j, &y) in b.iter().enumerate() {
                if !used[j] && (x - y).abs() < tol {
                    used[j] = true;
                    found = true;
                    break;
                }
            }
            assert!(found, "root {x} not matched within {tol}");
        }
    }

    #[test]
    fn quadratic_simple() {
        // z² - 3z + 2 = (z-1)(z-2)
        let roots = quadratic_roots(Complex64::real(-3.0), Complex64::real(2.0));
        assert_same_multiset(&roots, &[Complex64::real(1.0), Complex64::real(2.0)], 1e-12);
    }

    #[test]
    fn quadratic_complex_roots() {
        // z² + 1 = (z-i)(z+i)
        let roots = quadratic_roots(Complex64::ZERO, Complex64::ONE);
        assert_same_multiset(&roots, &[Complex64::I, -Complex64::I], 1e-12);
    }

    #[test]
    fn quartic_distinct_real() {
        let expected = [
            Complex64::real(1.0),
            Complex64::real(-2.0),
            Complex64::real(3.0),
            Complex64::real(0.5),
        ];
        let coeffs = poly_from_roots(&expected);
        let roots = roots_monic(&coeffs);
        assert_same_multiset(&roots, &expected, 1e-8);
    }

    #[test]
    fn quartic_unit_circle() {
        // Typical spectrum of the Weyl-coordinate computation.
        let expected = [
            Complex64::cis(0.3),
            Complex64::cis(-0.3),
            Complex64::cis(2.0),
            Complex64::cis(-2.0),
        ];
        let coeffs = poly_from_roots(&expected);
        let roots = roots_monic(&coeffs);
        assert_same_multiset(&roots, &expected, 1e-8);
    }

    #[test]
    fn quartic_with_double_root() {
        let expected = [
            Complex64::cis(0.5),
            Complex64::cis(0.5),
            Complex64::cis(-1.1),
            Complex64::cis(2.7),
        ];
        let coeffs = poly_from_roots(&expected);
        let roots = roots_monic(&coeffs);
        // Repeated roots converge slower; tolerate looser matching.
        assert_same_multiset(&roots, &expected, 1e-5);
    }

    #[test]
    fn quartic_identity_spectrum() {
        // All roots equal — the spectrum of the identity. Durand–Kerner has a
        // hard time with quadruple roots; accuracy degrades like ε^{1/4}, so
        // use a correspondingly loose tolerance (the Weyl pipeline handles
        // this case upstream by special-casing near-identity gates).
        let expected = [Complex64::ONE; 4];
        let coeffs = poly_from_roots(&expected);
        let roots = roots_monic(&coeffs);
        assert_same_multiset(&roots, &expected, 2e-3);
    }

    #[test]
    fn random_quartics_roundtrip() {
        let mut rng = Rng::new(99);
        for _ in 0..50 {
            let expected: Vec<Complex64> = (0..4)
                .map(|_| Complex64::new(rng.uniform_range(-2.0, 2.0), rng.uniform_range(-2.0, 2.0)))
                .collect();
            let coeffs = poly_from_roots(&expected);
            let roots = roots_monic(&coeffs);
            assert_same_multiset(&roots, &expected, 1e-6);
        }
    }

    #[test]
    fn degree_one() {
        let roots = roots_monic(&[Complex64::real(5.0)]);
        assert_same_multiset(&roots, &[Complex64::real(-5.0)], 1e-12);
    }

    #[test]
    fn eval_monic_horner() {
        // z² - 3z + 2 at z = 4 → 16 - 12 + 2 = 6
        let c = [Complex64::real(2.0), Complex64::real(-3.0)];
        let v = eval_monic(&c, Complex64::real(4.0));
        assert!(v.approx_eq(Complex64::real(6.0), 1e-12));
    }

    #[test]
    fn eval_monic_deriv_correct() {
        // d/dz (z² - 3z + 2) = 2z - 3 at z = 4 → 5
        let c = [Complex64::real(2.0), Complex64::real(-3.0)];
        let v = eval_monic_deriv(&c, Complex64::real(4.0));
        assert!(v.approx_eq(Complex64::real(5.0), 1e-12));
    }
}
