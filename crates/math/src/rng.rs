//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (Haar sampling, Monte Carlo
//! integration, routing trials) consumes a [`Rng`] seeded from an explicit
//! `u64`, so experiments are bit-reproducible. The generator is xoshiro256**
//! seeded through SplitMix64, the standard recommendation of the xoshiro
//! authors.

/// A small, fast, deterministic PRNG (xoshiro256** seeded via SplitMix64).
///
/// ```
/// use mirage_math::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a seed. Different seeds give independent
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator. Used to hand disjoint streams
    /// to parallel routing trials without sharing mutable state.
    pub fn spawn(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below called with n = 0");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small ranges used here (≪ 2^32).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal sample via Box–Muller (cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(v) = self.gauss_spare.take() {
            return v;
        }
        loop {
            let u1 = self.uniform();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = std::f64::consts::TAU * u2;
            self.gauss_spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = Rng::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut r = Rng::new(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let k = r.below(7);
            assert!(k < 7);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "n = 0")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(23);
        let mut xs: Vec<u32> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn spawn_decorrelates() {
        let mut parent = Rng::new(9);
        let mut c1 = parent.spawn();
        let mut c2 = parent.spawn();
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(31);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
