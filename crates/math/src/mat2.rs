//! 2×2 complex matrices (single-qubit operators).

use crate::Complex64;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A 2×2 complex matrix in row-major order.
///
/// Used throughout the workspace for single-qubit unitaries.
///
/// ```
/// use mirage_math::Mat2;
/// let h = Mat2::hadamard_like();
/// assert!(h.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2 {
    /// Row-major entries `[[a,b],[c,d]]` flattened.
    pub e: [[Complex64; 2]; 2],
}

impl Default for Mat2 {
    fn default() -> Self {
        Mat2::zero()
    }
}

impl Mat2 {
    /// All-zero matrix.
    pub fn zero() -> Self {
        Mat2 {
            e: [[Complex64::ZERO; 2]; 2],
        }
    }

    /// Identity matrix.
    pub fn identity() -> Self {
        let mut m = Mat2::zero();
        m.e[0][0] = Complex64::ONE;
        m.e[1][1] = Complex64::ONE;
        m
    }

    /// Build from four entries, row-major.
    pub fn new(a: Complex64, b: Complex64, c: Complex64, d: Complex64) -> Self {
        Mat2 {
            e: [[a, b], [c, d]],
        }
    }

    /// Build from real entries.
    pub fn from_real(a: f64, b: f64, c: f64, d: f64) -> Self {
        Mat2::new(
            Complex64::real(a),
            Complex64::real(b),
            Complex64::real(c),
            Complex64::real(d),
        )
    }

    /// The normalized Hadamard-like matrix `1/√2 [[1,1],[1,-1]]`; used in
    /// doctests and as a handy unitary fixture.
    pub fn hadamard_like() -> Self {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Mat2::from_real(s, s, s, -s)
    }

    /// Matrix product `self · rhs`.
    #[allow(clippy::should_implement_trait)] // by-reference operand; kept for call-site symmetry with Mat4
    pub fn mul(self, rhs: &Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = Complex64::ZERO;
                for k in 0..2 {
                    acc += self.e[i][k] * rhs.e[k][j];
                }
                out.e[i][j] = acc;
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat2 {
        let mut out = Mat2::zero();
        for i in 0..2 {
            for j in 0..2 {
                out.e[j][i] = self.e[i][j].conj();
            }
        }
        out
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> Mat2 {
        let mut out = Mat2::zero();
        for i in 0..2 {
            for j in 0..2 {
                out.e[j][i] = self.e[i][j];
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Mat2 {
        let mut out = *self;
        for row in out.e.iter_mut() {
            for v in row.iter_mut() {
                *v = v.conj();
            }
        }
        out
    }

    /// Determinant.
    pub fn det(&self) -> Complex64 {
        self.e[0][0] * self.e[1][1] - self.e[0][1] * self.e[1][0]
    }

    /// Trace.
    pub fn trace(&self) -> Complex64 {
        self.e[0][0] + self.e[1][1]
    }

    /// Scale every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> Mat2 {
        let mut out = *self;
        for row in out.e.iter_mut() {
            for v in row.iter_mut() {
                *v *= k;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.e
            .iter()
            .flatten()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// True when `‖self†·self − I‖∞ ≤ tol` entry-wise.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.adjoint().mul(self).approx_eq(&Mat2::identity(), tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Mat2, tol: f64) -> bool {
        for i in 0..2 {
            for j in 0..2 {
                if !self.e[i][j].approx_eq(other.e[i][j], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Approximate equality up to a global phase: finds the largest entry of
    /// `self`, aligns phases there, then compares.
    pub fn approx_eq_up_to_phase(&self, other: &Mat2, tol: f64) -> bool {
        let mut best = (0usize, 0usize);
        let mut best_mag = -1.0;
        for i in 0..2 {
            for j in 0..2 {
                let m = self.e[i][j].abs();
                if m > best_mag {
                    best_mag = m;
                    best = (i, j);
                }
            }
        }
        if best_mag < tol {
            return self.approx_eq(other, tol);
        }
        let (i, j) = best;
        if other.e[i][j].abs() < tol {
            return false;
        }
        let phase = self.e[i][j] / other.e[i][j];
        self.approx_eq(&other.scale(phase), tol)
    }
}

impl Add for Mat2 {
    type Output = Mat2;
    fn add(self, rhs: Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for i in 0..2 {
            for j in 0..2 {
                out.e[i][j] = self.e[i][j] + rhs.e[i][j];
            }
        }
        out
    }
}

impl Sub for Mat2 {
    type Output = Mat2;
    fn sub(self, rhs: Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for i in 0..2 {
            for j in 0..2 {
                out.e[i][j] = self.e[i][j] - rhs.e[i][j];
            }
        }
        out
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    fn mul(self, rhs: Mat2) -> Mat2 {
        Mat2::mul(self, &rhs)
    }
}

impl fmt::Display for Mat2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.e {
            writeln!(f, "[{} {}]", row[0], row[1])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn pauli_x() -> Mat2 {
        Mat2::from_real(0.0, 1.0, 1.0, 0.0)
    }

    fn pauli_y() -> Mat2 {
        Mat2::new(
            Complex64::ZERO,
            -Complex64::I,
            Complex64::I,
            Complex64::ZERO,
        )
    }

    fn pauli_z() -> Mat2 {
        Mat2::from_real(1.0, 0.0, 0.0, -1.0)
    }

    #[test]
    fn identity_is_unitary() {
        assert!(Mat2::identity().is_unitary(TOL));
    }

    #[test]
    fn paulis_are_unitary_and_involutive() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.is_unitary(TOL));
            assert!(p.mul(&p).approx_eq(&Mat2::identity(), TOL));
        }
    }

    #[test]
    fn pauli_commutation_xy_equals_iz() {
        let lhs = pauli_x().mul(&pauli_y());
        let rhs = pauli_z().scale(Complex64::I);
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn det_of_paulis() {
        assert!(pauli_x().det().approx_eq(Complex64::real(-1.0), TOL));
        assert!(pauli_y().det().approx_eq(Complex64::real(-1.0), TOL));
    }

    #[test]
    fn trace_linear() {
        let a = pauli_x();
        let b = pauli_z();
        let t = (a + b).trace();
        assert!(t.approx_eq(a.trace() + b.trace(), TOL));
    }

    #[test]
    fn adjoint_reverses_product() {
        let a = Mat2::hadamard_like();
        let b = pauli_y();
        let lhs = a.mul(&b).adjoint();
        let rhs = b.adjoint().mul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn phase_insensitive_compare() {
        let a = Mat2::hadamard_like();
        let b = a.scale(Complex64::cis(0.9));
        assert!(b.approx_eq_up_to_phase(&a, 1e-10));
        assert!(!b.approx_eq(&a, 1e-10));
    }

    #[test]
    fn fro_norm_of_identity() {
        assert!((Mat2::identity().fro_norm() - 2f64.sqrt()).abs() < TOL);
    }
}
