//! Double-precision complex scalar.
//!
//! A minimal, dependency-free replacement for `num_complex::Complex64` with
//! the operations the Weyl-chamber and decomposition machinery needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` in double precision.
///
/// ```
/// use mirage_math::Complex64;
/// let i = Complex64::I;
/// assert!((i * i + Complex64::ONE).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Construct from Cartesian parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Construct a purely real value.
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Construct `r·e^{iθ}` from polar form.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` on the unit circle.
    pub fn cis(theta: f64) -> Self {
        Complex64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²` (cheaper than [`Complex64::abs`]).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Does not panic; returns non-finite parts if `self` is zero, matching
    /// IEEE-754 division semantics.
    pub fn inv(self) -> Self {
        let n = self.norm_sqr();
        Complex64::new(self.re / n, -self.im / n)
    }

    /// Complex exponential `e^{self}`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::from_polar(r, self.im)
    }

    /// Principal square root (branch cut on the negative real axis).
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Complex64::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Principal `n`-th root via polar form.
    pub fn nth_root(self, n: u32) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Complex64::from_polar(r.powf(1.0 / f64::from(n)), theta / f64::from(n))
    }

    /// Raise to a real power via polar form.
    pub fn powf(self, p: f64) -> Self {
        if self == Complex64::ZERO {
            return Complex64::ZERO;
        }
        Complex64::from_polar(self.abs().powf(p), self.arg() * p)
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// True when both parts are within `tol` of `other`'s.
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// True when both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        #[allow(clippy::suspicious_arithmetic_impl)] // division IS mul by inverse
        {
            self * rhs.inv()
        }
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert!((z + Complex64::ZERO).approx_eq(z, TOL));
        assert!((z * Complex64::ONE).approx_eq(z, TOL));
        assert!((z - z).approx_eq(Complex64::ZERO, TOL));
        assert!((z * z.inv()).approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex64::I * Complex64::I).approx_eq(Complex64::real(-1.0), TOL));
    }

    #[test]
    fn abs_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 1.234;
        let a = (Complex64::I * theta).exp();
        let b = Complex64::cis(theta);
        assert!(a.approx_eq(b, TOL));
    }

    #[test]
    fn euler_identity() {
        let z = (Complex64::I * std::f64::consts::PI).exp();
        assert!(z.approx_eq(Complex64::real(-1.0), TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(2.0, 3.0), (-1.0, 0.5), (0.0, -2.0), (4.0, 0.0)] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-10), "sqrt failed for {z}");
        }
    }

    #[test]
    fn nth_root_of_unit_phase() {
        let z = Complex64::cis(1.2);
        let r = z.nth_root(4);
        assert!((r.arg() - 0.3).abs() < TOL);
        assert!((r.abs() - 1.0).abs() < TOL);
    }

    #[test]
    fn powf_matches_repeated_mul() {
        let z = Complex64::new(0.6, 0.8);
        let p = z.powf(3.0);
        let m = z * z * z;
        assert!(p.approx_eq(m, 1e-10));
    }

    #[test]
    fn division() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        let q = a / b;
        assert!((q * b).approx_eq(a, TOL));
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex64::new(1.5, -2.5);
        assert!((z * z.conj()).approx_eq(Complex64::real(z.norm_sqr()), TOL));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4)
            .map(|k| Complex64::cis(std::f64::consts::FRAC_PI_2 * k as f64))
            .sum();
        // 1 + i - 1 - i = 0
        assert!(total.approx_eq(Complex64::ZERO, TOL));
    }

    #[test]
    fn display_formats_sign() {
        let s = format!("{}", Complex64::new(1.0, -2.0));
        assert!(s.contains('-'));
    }
}
