//! Derivative-free minimization: Nelder–Mead simplex.
//!
//! Two customers in this workspace:
//!
//! * the coverage builder, which maximizes support functions of reachable
//!   regions to pin down polytope vertices, and
//! * the numerical decomposer (`mirage-synth`), which fits interleaved
//!   single-qubit parameters to match a target unitary (the paper's
//!   "numerical decomposition" of §III-A).
//!
//! The implementation is the standard adaptive Nelder–Mead with restarts
//! left to the caller.

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy)]
pub struct NmOptions {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Initial simplex step per coordinate.
    pub step: f64,
}

impl Default for NmOptions {
    fn default() -> Self {
        NmOptions {
            max_evals: 2000,
            f_tol: 1e-10,
            step: 0.5,
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct NmResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
}

/// Minimize `f` starting from `x0` with the Nelder–Mead simplex method.
///
/// Deterministic given the same inputs. Returns the best point seen.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(mut f: F, x0: &[f64], opts: &NmOptions) -> NmResult {
    let n = x0.len();
    assert!(n > 0, "nelder_mead requires at least one parameter");
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| {
        *evals += 1;
        f(x)
    };

    // Adaptive coefficients (Gao & Han) help in higher dimensions.
    let nf = n as f64;
    let alpha = 1.0;
    let beta = 1.0 + 2.0 / nf;
    let gamma = 0.75 - 1.0 / (2.0 * nf);
    let delta = 1.0 - 1.0 / nf;

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), f0));
    for i in 0..n {
        let mut x = x0.to_vec();
        x[i] += opts.step;
        let fx = eval(&x, &mut evals);
        simplex.push((x, fx));
    }

    while evals < opts.max_evals {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < opts.f_tol {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0f64; n];
        for (x, _) in simplex.iter().take(n) {
            for (c, v) in centroid.iter_mut().zip(x) {
                *c += v;
            }
        }
        for c in centroid.iter_mut() {
            *c /= nf;
        }
        let worst = simplex[n].clone();

        let blend = |t: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + t * (c - w))
                .collect()
        };

        // Reflection.
        let xr = blend(alpha);
        let fr = eval(&xr, &mut evals);
        if fr < simplex[0].1 {
            // Expansion.
            let xe = blend(beta);
            let fe = eval(&xe, &mut evals);
            simplex[n] = if fe < fr { (xe, fe) } else { (xr, fr) };
            continue;
        }
        if fr < simplex[n - 1].1 {
            simplex[n] = (xr, fr);
            continue;
        }
        // Contraction (outside or inside).
        let (xc, fc) = if fr < worst.1 {
            let xc = blend(gamma);
            let fc = eval(&xc, &mut evals);
            (xc, fc)
        } else {
            let xc = blend(-gamma);
            let fc = eval(&xc, &mut evals);
            (xc, fc)
        };
        if fc < worst.1.min(fr) {
            simplex[n] = (xc, fc);
            continue;
        }
        // Shrink toward the best.
        let best = simplex[0].0.clone();
        for entry in simplex.iter_mut().skip(1) {
            let x: Vec<f64> = best
                .iter()
                .zip(&entry.0)
                .map(|(b, v)| b + delta * (v - b))
                .collect();
            let fx = eval(&x, &mut evals);
            *entry = (x, fx);
        }
    }

    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    NmResult {
        x: simplex[0].0.clone(),
        fx: simplex[0].1,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let r = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &NmOptions::default(),
        );
        assert!(r.fx < 1e-8, "fx = {}", r.fx);
        assert!((r.x[0] - 3.0).abs() < 1e-4);
        assert!((r.x[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let rosen = |x: &[f64]| {
            let a = 1.0 - x[0];
            let b = x[1] - x[0] * x[0];
            a * a + 100.0 * b * b
        };
        let r = nelder_mead(
            rosen,
            &[-1.2, 1.0],
            &NmOptions {
                max_evals: 5000,
                ..NmOptions::default()
            },
        );
        assert!(r.fx < 1e-6, "fx = {}", r.fx);
    }

    #[test]
    fn handles_higher_dimensions() {
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let x0 = vec![1.0; 12];
        let r = nelder_mead(
            sphere,
            &x0,
            &NmOptions {
                max_evals: 20_000,
                f_tol: 1e-14,
                step: 0.5,
            },
        );
        assert!(r.fx < 1e-6, "fx = {}", r.fx);
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0usize;
        let _ = nelder_mead(
            |x| {
                count += 1;
                x[0] * x[0]
            },
            &[5.0],
            &NmOptions {
                max_evals: 100,
                f_tol: 0.0,
                step: 0.1,
            },
        );
        assert!(count <= 110, "count = {count}");
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn empty_input_panics() {
        let _ = nelder_mead(|_| 0.0, &[], &NmOptions::default());
    }
}
