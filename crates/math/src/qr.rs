//! QR factorization of 4×4 complex matrices.
//!
//! Used to project Ginibre samples onto the unitary group when drawing
//! Haar-random two-qubit gates (Mezzadri's recipe): factor `A = QR`, then
//! rescale `Q` by the phases of `diag(R)` so the distribution is exactly
//! Haar.

use crate::{Complex64, Mat4};

/// Modified Gram–Schmidt QR factorization `m = Q·R`.
///
/// `Q` is unitary, `R` upper triangular. Returns `None` when a column is
/// (numerically) linearly dependent, which has probability zero for the
/// random inputs this is used on.
pub fn qr4(m: &Mat4) -> Option<(Mat4, Mat4)> {
    // Work on columns.
    let mut cols: [[Complex64; 4]; 4] = [[Complex64::ZERO; 4]; 4];
    for (i, row) in m.e.iter().enumerate() {
        for j in 0..4 {
            cols[j][i] = row[j];
        }
    }

    let mut q: [[Complex64; 4]; 4] = [[Complex64::ZERO; 4]; 4];
    let mut r = Mat4::zero();

    for j in 0..4 {
        let mut v = cols[j];
        for k in 0..j {
            // r[k][j] = q_k† · v
            let mut dot = Complex64::ZERO;
            for i in 0..4 {
                dot += q[k][i].conj() * v[i];
            }
            r.e[k][j] = dot;
            for i in 0..4 {
                v[i] -= dot * q[k][i];
            }
        }
        let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return None;
        }
        r.e[j][j] = Complex64::real(norm);
        for i in 0..4 {
            q[j][i] = v[i] / norm;
        }
    }

    // q currently stores rows = orthonormal columns; transpose into Mat4.
    let mut qm = Mat4::zero();
    for j in 0..4 {
        for i in 0..4 {
            qm.e[i][j] = q[j][i];
        }
    }
    Some((qm, r))
}

/// Fix the phases of a QR factor pair so that `Q` is Haar-distributed when
/// the input was a Ginibre sample: multiply each column of `Q` by the phase
/// of the corresponding diagonal entry of `R`.
pub fn haar_fix(q: &Mat4, r: &Mat4) -> Mat4 {
    let mut out = *q;
    for j in 0..4 {
        let d = r.e[j][j];
        let mag = d.abs();
        let phase = if mag > 0.0 { d / mag } else { Complex64::ONE };
        for i in 0..4 {
            out.e[i][j] *= phase;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn random_mat4(rng: &mut Rng) -> Mat4 {
        let mut m = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                m.e[i][j] = Complex64::new(rng.gaussian(), rng.gaussian());
            }
        }
        m
    }

    #[test]
    fn qr_reconstructs() {
        let mut rng = Rng::new(5);
        for _ in 0..20 {
            let m = random_mat4(&mut rng);
            let (q, r) = qr4(&m).expect("random matrix is full rank");
            assert!(q.mul(&r).approx_eq(&m, 1e-9));
        }
    }

    #[test]
    fn q_is_unitary() {
        let mut rng = Rng::new(6);
        for _ in 0..20 {
            let m = random_mat4(&mut rng);
            let (q, _) = qr4(&m).unwrap();
            assert!(q.is_unitary(1e-9));
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = Rng::new(8);
        let m = random_mat4(&mut rng);
        let (_, r) = qr4(&m).unwrap();
        for i in 1..4 {
            for j in 0..i {
                assert!(r.e[i][j].abs() < 1e-10);
            }
        }
    }

    #[test]
    fn haar_fix_preserves_unitarity() {
        let mut rng = Rng::new(9);
        let m = random_mat4(&mut rng);
        let (q, r) = qr4(&m).unwrap();
        let u = haar_fix(&q, &r);
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn singular_input_rejected() {
        let mut m = Mat4::zero();
        m.e[0][0] = Complex64::ONE; // rank 1
        assert!(qr4(&m).is_none());
    }
}
