//! 4×4 complex matrices (two-qubit operators).

use crate::{Complex64, Mat2};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A 4×4 complex matrix in row-major order.
///
/// The qubit ordering convention is little-endian on basis states
/// `|q1 q0⟩ ∈ {|00⟩, |01⟩, |10⟩, |11⟩}` where column index `c = 2·q1 + q0`.
///
/// ```
/// use mirage_math::{Mat2, Mat4};
/// let u = Mat4::kron(&Mat2::hadamard_like(), &Mat2::identity());
/// assert!(u.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Row-major entries.
    pub e: [[Complex64; 4]; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::zero()
    }
}

impl Mat4 {
    /// All-zero matrix.
    pub fn zero() -> Self {
        Mat4 {
            e: [[Complex64::ZERO; 4]; 4],
        }
    }

    /// Identity matrix.
    pub fn identity() -> Self {
        let mut m = Mat4::zero();
        for i in 0..4 {
            m.e[i][i] = Complex64::ONE;
        }
        m
    }

    /// The SWAP gate permutation matrix.
    pub fn swap() -> Self {
        let mut m = Mat4::zero();
        m.e[0][0] = Complex64::ONE;
        m.e[1][2] = Complex64::ONE;
        m.e[2][1] = Complex64::ONE;
        m.e[3][3] = Complex64::ONE;
        m
    }

    /// Build from a row-major array of rows.
    pub fn from_rows(rows: [[Complex64; 4]; 4]) -> Self {
        Mat4 { e: rows }
    }

    /// Build a diagonal matrix from four entries.
    pub fn diag(d: [Complex64; 4]) -> Self {
        let mut m = Mat4::zero();
        for i in 0..4 {
            m.e[i][i] = d[i];
        }
        m
    }

    /// Kronecker product `a ⊗ b` (a acts on the high qubit).
    pub fn kron(a: &Mat2, b: &Mat2) -> Mat4 {
        let mut m = Mat4::zero();
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        m.e[2 * i + k][2 * j + l] = a.e[i][j] * b.e[k][l];
                    }
                }
            }
        }
        m
    }

    /// Matrix product `self · rhs`.
    #[allow(clippy::should_implement_trait)] // by-reference operand; a std::ops::Mul impl would force copies
    pub fn mul(self, rhs: &Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for k in 0..4 {
                let a = self.e[i][k];
                if a == Complex64::ZERO {
                    continue;
                }
                for j in 0..4 {
                    out.e[i][j] += a * rhs.e[k][j];
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                out.e[j][i] = self.e[i][j].conj();
            }
        }
        out
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                out.e[j][i] = self.e[i][j];
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Mat4 {
        let mut out = *self;
        for row in out.e.iter_mut() {
            for v in row.iter_mut() {
                *v = v.conj();
            }
        }
        out
    }

    /// Trace.
    pub fn trace(&self) -> Complex64 {
        (0..4).map(|i| self.e[i][i]).sum()
    }

    /// Determinant via LU decomposition with partial pivoting.
    pub fn det(&self) -> Complex64 {
        let mut a = self.e;
        let mut det = Complex64::ONE;
        for col in 0..4 {
            // Pivot: largest magnitude in this column at or below the diagonal.
            let mut piv = col;
            let mut piv_mag = a[col][col].abs();
            for r in (col + 1)..4 {
                let m = a[r][col].abs();
                if m > piv_mag {
                    piv_mag = m;
                    piv = r;
                }
            }
            if piv_mag == 0.0 {
                return Complex64::ZERO;
            }
            if piv != col {
                a.swap(piv, col);
                det = -det;
            }
            det *= a[col][col];
            let inv = a[col][col].inv();
            for r in (col + 1)..4 {
                let f = a[r][col] * inv;
                for c in col..4 {
                    let sub = f * a[col][c];
                    a[r][c] -= sub;
                }
            }
        }
        det
    }

    /// Scale every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> Mat4 {
        let mut out = *self;
        for row in out.e.iter_mut() {
            for v in row.iter_mut() {
                *v *= k;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.e
            .iter()
            .flatten()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Largest entry magnitude of `self − other`.
    pub fn max_diff(&self, other: &Mat4) -> f64 {
        let mut m = 0.0f64;
        for i in 0..4 {
            for j in 0..4 {
                m = m.max((self.e[i][j] - other.e[i][j]).abs());
            }
        }
        m
    }

    /// True when `‖self†·self − I‖∞ ≤ tol` entry-wise.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.adjoint().mul(self).approx_eq(&Mat4::identity(), tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Mat4, tol: f64) -> bool {
        self.max_diff(other) <= tol
    }

    /// Approximate equality up to a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &Mat4, tol: f64) -> bool {
        let mut best = (0usize, 0usize);
        let mut best_mag = -1.0;
        for i in 0..4 {
            for j in 0..4 {
                let m = self.e[i][j].abs();
                if m > best_mag {
                    best_mag = m;
                    best = (i, j);
                }
            }
        }
        if best_mag < tol {
            return self.approx_eq(other, tol);
        }
        let (i, j) = best;
        if other.e[i][j].abs() < tol * best_mag {
            return false;
        }
        let phase = self.e[i][j] / other.e[i][j];
        let phase = phase / phase.abs();
        self.approx_eq(&other.scale(phase), tol)
    }

    /// Normalize a unitary into SU(4) by dividing out `det^{1/4}`.
    ///
    /// The result has determinant 1 (up to numerical error). Only meaningful
    /// when `self` is (close to) unitary.
    pub fn to_special(&self) -> Mat4 {
        let d = self.det();
        let phase = d.nth_root(4);
        self.scale(phase.inv())
    }

    /// `self` conjugated: `P† · self · P`.
    pub fn conjugate_by(&self, p: &Mat4) -> Mat4 {
        p.adjoint().mul(self).mul(p)
    }

    /// Swap which qubit is "high" and which is "low": `SWAP · self · SWAP`.
    pub fn reverse_qubits(&self) -> Mat4 {
        let s = Mat4::swap();
        s.mul(self).mul(&s)
    }

    /// Hilbert–Schmidt inner product `Tr(self† · other)`.
    pub fn hs_inner(&self, other: &Mat4) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for i in 0..4 {
            for j in 0..4 {
                acc += self.e[i][j].conj() * other.e[i][j];
            }
        }
        acc
    }

    /// Average-gate-fidelity between two unitaries:
    /// `F = (|Tr(U†V)|² + d) / (d(d+1))` with `d = 4`.
    ///
    /// Equal to 1 iff the unitaries agree up to global phase.
    pub fn average_gate_fidelity(&self, other: &Mat4) -> f64 {
        let t = self.hs_inner(other).norm_sqr();
        (t + 4.0) / 20.0
    }
}

impl Add for Mat4 {
    type Output = Mat4;
    fn add(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                out.e[i][j] = self.e[i][j] + rhs.e[i][j];
            }
        }
        out
    }
}

impl Sub for Mat4 {
    type Output = Mat4;
    fn sub(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                out.e[i][j] = self.e[i][j] - rhs.e[i][j];
            }
        }
        out
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        Mat4::mul(self, &rhs)
    }
}

impl fmt::Display for Mat4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.e {
            writeln!(f, "[{} {} {} {}]", row[0], row[1], row[2], row[3])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn swap_involutive_and_unitary() {
        let s = Mat4::swap();
        assert!(s.is_unitary(TOL));
        assert!(s.mul(&s).approx_eq(&Mat4::identity(), TOL));
    }

    #[test]
    fn kron_of_identities() {
        let k = Mat4::kron(&Mat2::identity(), &Mat2::identity());
        assert!(k.approx_eq(&Mat4::identity(), TOL));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = Mat2::hadamard_like();
        let b = Mat2::from_real(0.0, 1.0, 1.0, 0.0);
        let c = Mat2::from_real(1.0, 0.0, 0.0, -1.0);
        let d = Mat2::hadamard_like();
        let lhs = Mat4::kron(&a, &b).mul(&Mat4::kron(&c, &d));
        let rhs = Mat4::kron(&a.mul(&c), &b.mul(&d));
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn det_of_diag() {
        let m = Mat4::diag([
            Complex64::real(2.0),
            Complex64::real(3.0),
            Complex64::I,
            Complex64::real(1.0),
        ]);
        assert!(m.det().approx_eq(Complex64::new(0.0, 6.0), TOL));
    }

    #[test]
    fn det_multiplicative() {
        let a = Mat4::kron(&Mat2::hadamard_like(), &Mat2::from_real(0.0, 1.0, 1.0, 0.0));
        let b = Mat4::swap();
        let lhs = a.mul(&b).det();
        let rhs = a.det() * b.det();
        assert!(lhs.approx_eq(rhs, 1e-10));
    }

    #[test]
    fn det_of_swap_is_minus_one() {
        assert!(Mat4::swap().det().approx_eq(Complex64::real(-1.0), TOL));
    }

    #[test]
    fn det_singular_matrix() {
        let mut m = Mat4::zero();
        m.e[0][0] = Complex64::ONE;
        assert!(m.det().approx_eq(Complex64::ZERO, TOL));
    }

    #[test]
    fn to_special_has_unit_det() {
        let u = Mat4::swap().scale(Complex64::cis(0.3));
        let s = u.to_special();
        assert!(s.det().approx_eq(Complex64::ONE, 1e-10));
    }

    #[test]
    fn adjoint_reverses_product() {
        let a = Mat4::kron(&Mat2::hadamard_like(), &Mat2::identity());
        let b = Mat4::swap();
        assert!(a
            .mul(&b)
            .adjoint()
            .approx_eq(&b.adjoint().mul(&a.adjoint()), TOL));
    }

    #[test]
    fn average_gate_fidelity_self_is_one() {
        let u = Mat4::kron(&Mat2::hadamard_like(), &Mat2::hadamard_like());
        assert!((u.average_gate_fidelity(&u) - 1.0).abs() < TOL);
        let v = u.scale(Complex64::cis(1.1));
        assert!((u.average_gate_fidelity(&v) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn average_gate_fidelity_orthogonal() {
        // Identity vs SWAP: Tr(SWAP) = 2, so F = (4+4)/20 = 0.4.
        let f = Mat4::identity().average_gate_fidelity(&Mat4::swap());
        assert!((f - 0.4).abs() < TOL);
    }

    #[test]
    fn phase_insensitive_compare() {
        let u = Mat4::swap();
        let v = u.scale(Complex64::cis(-2.0));
        assert!(u.approx_eq_up_to_phase(&v, 1e-10));
        assert!(!u.approx_eq(&v, 1e-10));
    }

    #[test]
    fn reverse_qubits_on_kron_swaps_factors() {
        let a = Mat2::hadamard_like();
        let b = Mat2::from_real(0.0, 1.0, 1.0, 0.0);
        let lhs = Mat4::kron(&a, &b).reverse_qubits();
        let rhs = Mat4::kron(&b, &a);
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn trace_of_identity() {
        assert!(Mat4::identity()
            .trace()
            .approx_eq(Complex64::real(4.0), TOL));
    }
}
