//! Complex dense linear algebra substrate for the MIRAGE reproduction.
//!
//! The paper's Python implementation leans on NumPy/SciPy for all of its
//! numerics. This crate rebuilds exactly the slice of that stack the
//! transpiler needs, from scratch:
//!
//! * [`Complex64`] — double-precision complex scalar with the full arithmetic
//!   surface (including [`Complex64::exp`], [`Complex64::sqrt`], polar forms).
//! * [`Mat2`] / [`Mat4`] — stack-allocated 2×2 and 4×4 complex matrices with
//!   products, adjoints, determinants, Kronecker products and unitarity
//!   checks.
//! * [`qr::qr4`] — modified Gram–Schmidt QR factorization of 4×4 complex
//!   matrices (used to turn Ginibre samples into Haar-random unitaries).
//! * [`eig`] — a Jacobi eigensolver for real-symmetric 4×4 matrices plus a
//!   characteristic-polynomial (Faddeev–LeVerrier + Durand–Kerner) eigenvalue
//!   routine for general complex 4×4 matrices.
//! * [`poly`] — complex polynomial root finding (quartics and below).
//! * [`rng`] — a small deterministic PRNG (SplitMix64 seeding into
//!   xoshiro256**) so every experiment in the repository is reproducible from
//!   a single `u64` seed.
//!
//! # Example
//!
//! ```
//! use mirage_math::{Complex64, Mat4};
//!
//! let swap = Mat4::swap();
//! assert!(swap.is_unitary(1e-12));
//! assert!((swap.mul(&swap)).approx_eq(&Mat4::identity(), 1e-12));
//! ```
//!
//! ---
//! **Owns:** [`Complex64`], [`Mat2`], [`Mat4`], [`qr::qr4`], [`eig`],
//! [`poly`], [`rng::Rng`].
//! **Paper:** the numerical substrate under §§III–V (no section of its
//! own; replaces the Python implementation's NumPy/SciPy layer).

pub mod complex;
pub mod eig;
pub mod mat2;
pub mod mat4;
pub mod optimize;
pub mod poly;
pub mod qr;
pub mod rng;

pub use complex::Complex64;
pub use mat2::Mat2;
pub use mat4::Mat4;
pub use rng::Rng;

/// Machine tolerance used as the default for approximate comparisons across
/// the workspace. Matrix reconstruction errors after eigendecompositions are
/// typically far below this.
pub const EPS: f64 = 1e-9;

/// Two π. Convenience constant mirroring `std::f64::consts`.
pub const TAU: f64 = std::f64::consts::TAU;

/// π/2, the length of the Weyl-chamber edge in canonical coordinates.
pub const PI_2: f64 = std::f64::consts::FRAC_PI_2;

/// π/4, the canonical coordinate of CNOT along the first axis.
pub const PI_4: f64 = std::f64::consts::FRAC_PI_4;

/// Reduce `x` into `[0, m)` by true mathematical modulus (result never
/// negative, unlike `%`).
///
/// ```
/// use mirage_math::wrap_mod;
/// assert!((wrap_mod(-0.1, 1.0) - 0.9).abs() < 1e-12);
/// ```
pub fn wrap_mod(x: f64, m: f64) -> f64 {
    let r = x % m;
    if r < 0.0 {
        r + m
    } else {
        r
    }
}

/// Approximate scalar comparison with absolute tolerance.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_mod_positive() {
        assert!((wrap_mod(3.5, 1.0) - 0.5).abs() < 1e-12);
        assert!((wrap_mod(0.25, 1.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wrap_mod_negative() {
        assert!((wrap_mod(-0.25, 1.0) - 0.75).abs() < 1e-12);
        assert!((wrap_mod(-2.0, 1.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_mod_zero() {
        assert_eq!(wrap_mod(0.0, 1.0), 0.0);
    }

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }
}
