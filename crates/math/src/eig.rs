//! Eigen-solvers for the 4×4 matrices used by the Weyl machinery.
//!
//! Two routines:
//!
//! * [`eigvals4`] — eigenvalues of a general complex 4×4 matrix via the
//!   Faddeev–LeVerrier characteristic polynomial and Durand–Kerner roots.
//!   Used to read off the canonical coordinates of a two-qubit unitary.
//! * [`jacobi_sym4`] / [`simultaneous_diag4`] — classical Jacobi rotation
//!   eigensolver for real symmetric 4×4 matrices, and simultaneous
//!   diagonalization of a commuting symmetric pair. Used by the full KAK
//!   decomposition, where `MᵀM` (in the magic basis) is complex symmetric
//!   unitary so its real and imaginary parts commute.

use crate::poly::roots_monic;
use crate::{Complex64, Mat4};

/// Eigenvalues of a complex 4×4 matrix (unordered).
///
/// Coefficients of the characteristic polynomial are produced by the
/// Faddeev–LeVerrier recursion from traces of matrix powers, then all four
/// roots are found simultaneously.
pub fn eigvals4(m: &Mat4) -> [Complex64; 4] {
    // p(λ) = λ⁴ + c3 λ³ + c2 λ² + c1 λ + c0 via Newton's identities:
    // e1 = t1
    // e2 = (e1 t1 - t2)/2
    // e3 = (e2 t1 - e1 t2 + t3)/3
    // e4 = (e3 t1 - e2 t2 + e1 t3 - t4)/4
    // ck = (-1)^{4-k} e_{4-k}
    let m2 = m.mul(m);
    let m3 = m2.mul(m);
    let m4 = m3.mul(m);
    let t1 = m.trace();
    let t2 = m2.trace();
    let t3 = m3.trace();
    let t4 = m4.trace();

    let e1 = t1;
    let e2 = (e1 * t1 - t2).scale(0.5);
    let e3 = (e2 * t1 - e1 * t2 + t3).scale(1.0 / 3.0);
    let e4 = (e3 * t1 - e2 * t2 + e1 * t3 - t4).scale(0.25);

    let coeffs = [e4, -e3, e2, -e1]; // [c0, c1, c2, c3]
    let roots = roots_monic(&coeffs);
    [roots[0], roots[1], roots[2], roots[3]]
}

/// Result of a real symmetric eigendecomposition: `a = V · diag(vals) · Vᵀ`
/// with `V` orthogonal (columns are eigenvectors).
#[derive(Debug, Clone)]
pub struct SymEig4 {
    /// Eigenvalues, in the order matching `vecs` columns.
    pub vals: [f64; 4],
    /// Orthogonal matrix whose columns are eigenvectors.
    pub vecs: [[f64; 4]; 4],
}

/// Classical Jacobi eigensolver for a real symmetric 4×4 matrix.
///
/// Converges to machine precision in a handful of sweeps for 4×4 inputs.
pub fn jacobi_sym4(a0: [[f64; 4]; 4]) -> SymEig4 {
    let mut a = a0;
    let mut v = [[0.0f64; 4]; 4];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for _sweep in 0..64 {
        // Largest off-diagonal element.
        let mut off = 0.0f64;
        for i in 0..4 {
            for j in (i + 1)..4 {
                off = off.max(a[i][j].abs());
            }
        }
        if off < 1e-14 {
            break;
        }
        for p in 0..4 {
            for q in (p + 1)..4 {
                if a[p][q].abs() < 1e-16 {
                    continue;
                }
                // Standard Jacobi rotation eliminating a[p][q].
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                for k in 0..4 {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..4 {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..4 {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    SymEig4 {
        vals: [a[0][0], a[1][1], a[2][2], a[3][3]],
        vecs: v,
    }
}

/// Multiply two real 4×4 matrices.
fn rmul(a: &[[f64; 4]; 4], b: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
    let mut out = [[0.0f64; 4]; 4];
    for i in 0..4 {
        for k in 0..4 {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..4 {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

/// Transpose a real 4×4 matrix.
fn rtrans(a: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
    let mut out = [[0.0f64; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            out[j][i] = a[i][j];
        }
    }
    out
}

/// Largest off-diagonal magnitude of `Pᵀ A P`.
fn offdiag_after(p: &[[f64; 4]; 4], a: &[[f64; 4]; 4]) -> f64 {
    let d = rmul(&rtrans(p), &rmul(a, p));
    let mut off = 0.0f64;
    for i in 0..4 {
        for j in 0..4 {
            if i != j {
                off = off.max(d[i][j].abs());
            }
        }
    }
    off
}

/// Simultaneously diagonalize two commuting real symmetric 4×4 matrices.
///
/// Returns an orthogonal `P` (with `det P = +1`) such that both `Pᵀ·a·P` and
/// `Pᵀ·b·P` are diagonal to within `tol`. The strategy diagonalizes random
/// combinations `a + t·b`; for commuting pairs a generic combination has a
/// simple spectrum whose eigenbasis diagonalizes both.
///
/// # Errors
///
/// Returns `None` if no tried combination achieves the tolerance (only
/// happens if the inputs do not actually commute).
pub fn simultaneous_diag4(a: &[[f64; 4]; 4], b: &[[f64; 4]; 4], tol: f64) -> Option<[[f64; 4]; 4]> {
    // Deterministic sequence of mixing parameters. Irrational-ish spacing
    // avoids systematically colliding eigenvalues.
    let ts = [
        0.618_033_988_75,
        std::f64::consts::SQRT_2,
        0.267_949_192_43,
        2.236_067_977_50,
        0.101_321_183_64,
        3.302_775_637_73,
        0.777_777_777_78,
        5.123_105_625_62,
    ];
    for &t in &ts {
        let mut mix = [[0.0f64; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                mix[i][j] = a[i][j] + t * b[i][j];
            }
        }
        let eig = jacobi_sym4(mix);
        let mut p = eig.vecs;
        // Force det(P) = +1 so P ∈ SO(4) (needed by the KAK magic-basis
        // correspondence SO(4) ≅ SU(2)⊗SU(2)).
        if rdet4(&p) < 0.0 {
            for row in p.iter_mut() {
                row[0] = -row[0];
            }
        }
        if offdiag_after(&p, a) < tol && offdiag_after(&p, b) < tol {
            return Some(p);
        }
    }
    None
}

/// Determinant of a real 4×4 matrix (LU with partial pivoting).
pub fn rdet4(a0: &[[f64; 4]; 4]) -> f64 {
    let mut a = *a0;
    let mut det = 1.0f64;
    for col in 0..4 {
        let mut piv = col;
        for r in (col + 1)..4 {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        if a[piv][col] == 0.0 {
            return 0.0;
        }
        if piv != col {
            a.swap(piv, col);
            det = -det;
        }
        det *= a[col][col];
        for r in (col + 1)..4 {
            let f = a[r][col] / a[col][col];
            for c in col..4 {
                a[r][c] -= f * a[col][c];
            }
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mat2, Rng};

    #[test]
    fn eigvals_of_diagonal() {
        let d = Mat4::diag([
            Complex64::real(1.0),
            Complex64::real(-2.0),
            Complex64::I,
            Complex64::new(0.5, 0.5),
        ]);
        let mut vals = eigvals4(&d).to_vec();
        for expect in [
            Complex64::real(1.0),
            Complex64::real(-2.0),
            Complex64::I,
            Complex64::new(0.5, 0.5),
        ] {
            let pos = vals
                .iter()
                .position(|v| (*v - expect).abs() < 1e-8)
                .unwrap_or_else(|| panic!("eigenvalue {expect} missing"));
            vals.remove(pos);
        }
    }

    #[test]
    fn eigvals_of_swap() {
        // SWAP has eigenvalues {1, 1, 1, -1}.
        let vals = eigvals4(&Mat4::swap());
        let pos = vals
            .iter()
            .filter(|v| (**v - Complex64::ONE).abs() < 1e-5)
            .count();
        let neg = vals
            .iter()
            .filter(|v| (**v + Complex64::ONE).abs() < 1e-5)
            .count();
        assert_eq!((pos, neg), (3, 1), "{vals:?}");
    }

    #[test]
    fn eigvals_product_is_det() {
        let u = Mat4::kron(&Mat2::hadamard_like(), &Mat2::from_real(0.0, 1.0, 1.0, 0.0));
        let vals = eigvals4(&u);
        let prod = vals.iter().fold(Complex64::ONE, |a, &b| a * b);
        assert!(prod.approx_eq(u.det(), 1e-8));
    }

    #[test]
    fn jacobi_reconstructs() {
        let a = [
            [4.0, 1.0, 0.5, 0.0],
            [1.0, 3.0, 0.2, 0.1],
            [0.5, 0.2, 2.0, 0.3],
            [0.0, 0.1, 0.3, 1.0],
        ];
        let e = jacobi_sym4(a);
        // Rebuild V D Vᵀ.
        let mut d = [[0.0f64; 4]; 4];
        for i in 0..4 {
            d[i][i] = e.vals[i];
        }
        let rec = rmul(&e.vecs, &rmul(&d, &rtrans(&e.vecs)));
        for i in 0..4 {
            for j in 0..4 {
                assert!((rec[i][j] - a[i][j]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn jacobi_orthogonal_vectors() {
        let a = [
            [1.0, 2.0, 0.0, 0.0],
            [2.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 5.0, 1.0],
            [0.0, 0.0, 1.0, 5.0],
        ];
        let e = jacobi_sym4(a);
        let vtv = rmul(&rtrans(&e.vecs), &e.vecs);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[i][j] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn simultaneous_diag_commuting_pair() {
        // Build a commuting pair: both diagonal in the same random basis.
        let mut rng = Rng::new(7);
        // Random rotation via product of Jacobi-style rotations.
        let mut p = [[0.0f64; 4]; 4];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                let theta = rng.uniform_range(0.0, std::f64::consts::TAU);
                let (s, c) = theta.sin_cos();
                for row in p.iter_mut() {
                    let xi = row[i];
                    let xj = row[j];
                    row[i] = c * xi - s * xj;
                    row[j] = s * xi + c * xj;
                }
            }
        }
        let da = [1.0, 2.0, 3.0, 4.0];
        let db = [-1.0, 0.5, 0.5, 2.0]; // degenerate pair in b
        let mk = |d: [f64; 4]| {
            let mut m = [[0.0f64; 4]; 4];
            for i in 0..4 {
                m[i][i] = d[i];
            }
            rmul(&p, &rmul(&m, &rtrans(&p)))
        };
        let a = mk(da);
        let b = mk(db);
        let q = simultaneous_diag4(&a, &b, 1e-8).expect("commuting pair must diagonalize");
        assert!(offdiag_after(&q, &a) < 1e-8);
        assert!(offdiag_after(&q, &b) < 1e-8);
        assert!((rdet4(&q) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rdet_of_rotation_is_one() {
        let c = 0.6;
        let s = 0.8;
        let r = [
            [c, -s, 0.0, 0.0],
            [s, c, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        assert!((rdet4(&r) - 1.0).abs() < 1e-12);
    }
}
