//! Statevector simulation.
//!
//! Used throughout the test-suite to prove that transpiled circuits are
//! *semantically equivalent* to their inputs: routing may permute output
//! qubits, so the checker accepts an explicit output permutation.
//!
//! Qubit `q` corresponds to bit `q` of the basis-state index (little
//! endian). For a two-qubit gate on `(hi, lo)` the 4×4 matrix index is
//! `2·bit(hi) + bit(lo)`, matching [`mirage_math::Mat4`].

use crate::circuit::Circuit;
use mirage_math::{Complex64, Mat2, Mat4};

/// A dense statevector over `n` qubits.
#[derive(Debug, Clone)]
pub struct State {
    /// Number of qubits.
    pub n: usize,
    /// `2^n` amplitudes.
    pub amps: Vec<Complex64>,
}

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics for `n > 24` (16M amplitudes) to protect tests from typos.
    pub fn zero(n: usize) -> State {
        assert!(n <= 24, "statevector simulator capped at 24 qubits");
        let mut amps = vec![Complex64::ZERO; 1 << n];
        amps[0] = Complex64::ONE;
        State { n, amps }
    }

    /// Apply a single-qubit gate.
    pub fn apply_1q(&mut self, m: &Mat2, q: usize) {
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m.e[0][0] * a0 + m.e[0][1] * a1;
                self.amps[j] = m.e[1][0] * a0 + m.e[1][1] * a1;
            }
        }
    }

    /// Apply a two-qubit gate; `hi` is the high (first-listed) qubit.
    pub fn apply_2q(&mut self, m: &Mat4, hi: usize, lo: usize) {
        let bh = 1usize << hi;
        let bl = 1usize << lo;
        for i in 0..self.amps.len() {
            if i & bh == 0 && i & bl == 0 {
                let idx = [i, i | bl, i | bh, i | bh | bl];
                let old = [
                    self.amps[idx[0]],
                    self.amps[idx[1]],
                    self.amps[idx[2]],
                    self.amps[idx[3]],
                ];
                for r in 0..4 {
                    let mut acc = Complex64::ZERO;
                    for c in 0..4 {
                        acc += m.e[r][c] * old[c];
                    }
                    self.amps[idx[r]] = acc;
                }
            }
        }
    }

    /// Run a whole circuit.
    pub fn apply_circuit(&mut self, c: &Circuit) {
        assert_eq!(self.n, c.n_qubits, "qubit count mismatch");
        for instr in &c.instructions {
            match instr.qubits.len() {
                1 => self.apply_1q(&instr.gate.matrix1(), instr.qubits[0]),
                2 => self.apply_2q(&instr.gate.matrix2(), instr.qubits[0], instr.qubits[1]),
                _ => unreachable!("gates are 1- or 2-qubit"),
            }
        }
    }

    /// Permute qubit labels: amplitude of basis state `s` moves to the
    /// state whose bit `perm[q]` equals bit `q` of `s`.
    pub fn permuted(&self, perm: &[usize]) -> State {
        assert_eq!(perm.len(), self.n);
        let mut out = vec![Complex64::ZERO; self.amps.len()];
        for (s, &a) in self.amps.iter().enumerate() {
            let mut t = 0usize;
            for (q, &p) in perm.iter().enumerate() {
                if s & (1 << q) != 0 {
                    t |= 1 << p;
                }
            }
            out[t] = a;
        }
        State {
            n: self.n,
            amps: out,
        }
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &State) -> f64 {
        let mut acc = Complex64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc.norm_sqr()
    }

    /// L2 norm (should stay 1 under unitary circuits).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }
}

/// Simulate `c` from `|0…0⟩`.
pub fn run(c: &Circuit) -> State {
    let mut s = State::zero(c.n_qubits);
    s.apply_circuit(c);
    s
}

/// True when the two circuits act identically on `|0…0⟩` up to global phase
/// and the given output permutation of the second circuit
/// (`perm[logical] = physical`).
pub fn equivalent_on_zero(a: &Circuit, b: &Circuit, perm: Option<&[usize]>) -> bool {
    let sa = run(a);
    let sb = run(b);
    let sb = match perm {
        Some(p) => {
            // b's outputs live on permuted wires; undo the permutation.
            let mut inv = vec![0usize; p.len()];
            for (l, &ph) in p.iter().enumerate() {
                inv[ph] = l;
            }
            sb.permuted(&inv)
        }
        None => sb,
    };
    sa.fidelity(&sb) > 1.0 - 1e-7
}

/// Build the full `2^n × 2^n` unitary of a small circuit by simulating all
/// basis states (used in unit tests only).
///
/// # Panics
///
/// Panics for `n > 6`.
pub fn unitary_of(c: &Circuit) -> Vec<Vec<Complex64>> {
    assert!(c.n_qubits <= 6, "unitary_of capped at 6 qubits");
    let dim = 1usize << c.n_qubits;
    let mut cols = Vec::with_capacity(dim);
    for b in 0..dim {
        let mut s = State::zero(c.n_qubits);
        s.amps[0] = Complex64::ZERO;
        s.amps[b] = Complex64::ONE;
        s.apply_circuit(c);
        cols.push(s.amps);
    }
    // cols[b][r] = U[r][b]; transpose into row-major.
    let mut u = vec![vec![Complex64::ZERO; dim]; dim];
    for (b, col) in cols.iter().enumerate() {
        for (r, &v) in col.iter().enumerate() {
            u[r][b] = v;
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = run(&c);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!((s.amps[0].abs() - r).abs() < 1e-12);
        assert!((s.amps[3].abs() - r).abs() < 1e-12);
        assert!(s.amps[1].abs() < 1e-12);
        assert!(s.amps[2].abs() < 1e-12);
    }

    #[test]
    fn cx_control_is_first_listed() {
        // X on qubit 1 (control), then CX(1,0) should flip qubit 0.
        let mut c = Circuit::new(2);
        c.x(1).cx(1, 0);
        let s = run(&c);
        assert!((s.amps[3].abs() - 1.0).abs() < 1e-12); // |11⟩
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1);
        let s = run(&c);
        assert!((s.amps[2].abs() - 1.0).abs() < 1e-12); // |10⟩ = qubit 1 set
    }

    #[test]
    fn norm_preserved() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.7, 1).cx(1, 2).ry(0.3, 2);
        let s = run(&c);
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn equivalence_identity() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        assert!(equivalent_on_zero(&a, &a, None));
    }

    #[test]
    fn equivalence_detects_difference() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0);
        assert!(!equivalent_on_zero(&a, &b, None));
    }

    #[test]
    fn equivalence_up_to_permutation() {
        // |+⟩⊗|1⟩ on swapped wires: equivalent only through the
        // permutation. (A Bell state would be symmetric — useless here.)
        let mut a = Circuit::new(2);
        a.x(0).h(1);
        let mut b = Circuit::new(2);
        b.x(1).h(0);
        assert!(equivalent_on_zero(&a, &b, Some(&[1, 0])));
        assert!(!equivalent_on_zero(&a, &b, None));
    }

    #[test]
    fn swap_gate_equals_wire_permutation() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).cx(1, 2);
        // Same circuit with an explicit SWAP(0,2) appended: outputs permuted
        // by exchanging 0 and 2.
        let mut b = a.clone();
        b.swap(0, 2);
        assert!(equivalent_on_zero(&a, &b, Some(&[2, 1, 0])));
    }

    #[test]
    fn unitary_of_cnot() {
        let mut c = Circuit::new(2);
        c.cx(1, 0); // control = qubit 1 (high bit of index)
        let u = unitary_of(&c);
        // |10⟩ (index 2) ↔ |11⟩ (index 3)
        assert!((u[3][2].abs() - 1.0).abs() < 1e-12);
        assert!((u[2][3].abs() - 1.0).abs() < 1e-12);
        assert!((u[0][0].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccx_decomposition_is_toffoli() {
        let mut c = Circuit::new(3);
        c.ccx(2, 1, 0); // controls = qubits 2,1; target = 0
        let u = unitary_of(&c);
        let dim = 8;
        for b in 0..dim {
            let expect = if b & 0b110 == 0b110 { b ^ 1 } else { b };
            let mag = u[expect][b].abs();
            assert!((mag - 1.0).abs() < 1e-9, "column {b} -> {expect}: {mag}");
        }
    }

    #[test]
    fn unitary2_block_roundtrip() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).rz(0.4, 1);
        // Same circuit as a consolidated block.
        let u = {
            // compute via unitary_of and wrap into a Mat4 (qubit1=hi).
            let m = unitary_of(&a);
            let mut mm = mirage_math::Mat4::zero();
            for r in 0..4 {
                for cidx in 0..4 {
                    // Mat4 convention: index = 2·hi + lo with hi = qubit
                    // *first listed*. Choose (1,0): index = 2·bit1 + bit0 =
                    // the raw basis index.
                    mm.e[r][cidx] = m[r][cidx];
                }
            }
            mm
        };
        let mut b = Circuit::new(2);
        b.push(Gate::Unitary2(u), &[1, 0]);
        assert!(equivalent_on_zero(&a, &b, None));
    }
}
