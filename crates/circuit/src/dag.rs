//! Dependency DAG over circuit instructions.
//!
//! The routers (SABRE and MIRAGE) consume circuits as DAGs: a gate becomes
//! executable once all of its per-qubit predecessors have been mapped. This
//! module provides the static structure — predecessor/successor lists, the
//! initial front layer, and weighted longest paths (the depth estimate
//! MIRAGE uses for post-selection, paper §IV-B).

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;

/// One DAG node: an instruction plus dependency links.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// Node id (index into [`Dag::nodes`]).
    pub id: usize,
    /// The gate.
    pub gate: Gate,
    /// Operand qubits.
    pub qubits: Vec<usize>,
    /// Immediate predecessors (dedup'd).
    pub preds: Vec<usize>,
    /// Immediate successors (dedup'd).
    pub succs: Vec<usize>,
}

/// The dependency DAG of a circuit. Node ids are a topological order (they
/// follow the original instruction order).
#[derive(Debug, Clone)]
pub struct Dag {
    /// Number of qubits in the underlying circuit.
    pub n_qubits: usize,
    /// Nodes in topological (instruction) order.
    pub nodes: Vec<DagNode>,
}

impl Dag {
    /// Build the DAG of a circuit.
    pub fn from_circuit(c: &Circuit) -> Dag {
        let mut nodes: Vec<DagNode> = Vec::with_capacity(c.instructions.len());
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; c.n_qubits];
        for (id, instr) in c.instructions.iter().enumerate() {
            let mut preds: Vec<usize> = instr
                .qubits
                .iter()
                .filter_map(|&q| last_on_qubit[q])
                .collect();
            preds.sort_unstable();
            preds.dedup();
            for &p in &preds {
                nodes[p].succs.push(id);
            }
            nodes.push(DagNode {
                id,
                gate: instr.gate.clone(),
                qubits: instr.qubits.clone(),
                preds,
                succs: Vec::new(),
            });
            for &q in &instr.qubits {
                last_on_qubit[q] = Some(id);
            }
        }
        // Dedup successor lists (a 2Q gate can be successor through both
        // wires).
        for n in nodes.iter_mut() {
            n.succs.sort_unstable();
            n.succs.dedup();
        }
        Dag {
            n_qubits: c.n_qubits,
            nodes,
        }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of nodes with no predecessors (the initial front layer).
    pub fn front_layer(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.preds.is_empty())
            .map(|n| n.id)
            .collect()
    }

    /// In-degree array (for router bookkeeping).
    pub fn indegrees(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.preds.len()).collect()
    }

    /// Longest path where node `n` contributes `weight(n)`; this is the
    /// duration-weighted critical path when weights are gate durations.
    pub fn longest_path<F: Fn(&DagNode) -> f64>(&self, weight: F) -> f64 {
        let mut dist = vec![0.0f64; self.nodes.len()];
        let mut best = 0.0f64;
        for n in &self.nodes {
            let start = n.preds.iter().map(|&p| dist[p]).fold(0.0f64, f64::max);
            dist[n.id] = start + weight(n);
            best = best.max(dist[n.id]);
        }
        best
    }

    /// Rebuild a circuit from the DAG (nodes in id order).
    pub fn to_circuit(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            instructions: self
                .nodes
                .iter()
                .map(|n| Instruction {
                    gate: n.gate.clone(),
                    qubits: n.qubits.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).h(2).cx(0, 1);
        c
    }

    #[test]
    fn build_structure() {
        let d = Dag::from_circuit(&sample());
        assert_eq!(d.len(), 5);
        // h(0) has no preds; cx(0,1) depends on h(0).
        assert!(d.nodes[0].preds.is_empty());
        assert_eq!(d.nodes[1].preds, vec![0]);
        // cx(1,2) depends on cx(0,1) only.
        assert_eq!(d.nodes[2].preds, vec![1]);
        // final cx(0,1) depends on cx(0,1) [wire 0] and cx(1,2) [wire 1].
        assert_eq!(d.nodes[4].preds, vec![1, 2]);
    }

    #[test]
    fn front_layer_initial() {
        let d = Dag::from_circuit(&sample());
        assert_eq!(d.front_layer(), vec![0]);
        let mut c2 = Circuit::new(4);
        c2.cx(0, 1).cx(2, 3);
        let d2 = Dag::from_circuit(&c2);
        assert_eq!(d2.front_layer(), vec![0, 1]);
    }

    #[test]
    fn longest_path_unit_weights() {
        let d = Dag::from_circuit(&sample());
        // h - cx01 - cx12 - cx01(last needs cx12) → h,cx,cx,cx = 4
        let lp = d.longest_path(|_| 1.0);
        assert!((lp - 4.0).abs() < 1e-12);
    }

    #[test]
    fn longest_path_2q_weights() {
        let d = Dag::from_circuit(&sample());
        let lp = d.longest_path(|n| if n.gate.is_two_qubit() { 1.0 } else { 0.0 });
        assert!((lp - 3.0).abs() < 1e-12);
        // Matches Circuit::depth_2q.
        assert_eq!(sample().depth_2q(), 3);
    }

    #[test]
    fn roundtrip_to_circuit() {
        let c = sample();
        let d = Dag::from_circuit(&c);
        assert_eq!(d.to_circuit(), c);
    }

    #[test]
    fn dedup_double_wire_successor() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        let d = Dag::from_circuit(&c);
        assert_eq!(d.nodes[0].succs, vec![1]);
        assert_eq!(d.nodes[1].preds, vec![0]);
    }

    #[test]
    fn empty_dag() {
        let d = Dag::from_circuit(&Circuit::new(3));
        assert!(d.is_empty());
        assert!(d.front_layer().is_empty());
        assert_eq!(d.longest_path(|_| 1.0), 0.0);
    }

    #[test]
    fn indegrees_match_preds() {
        let d = Dag::from_circuit(&sample());
        let deg = d.indegrees();
        for n in &d.nodes {
            assert_eq!(deg[n.id], n.preds.len());
        }
    }
}
