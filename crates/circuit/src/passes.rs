//! Circuit optimization passes — the paper's §V "input cleaning": identity
//! removal, adjacent-inverse cancellation, rotation merging, and **SWAP
//! elision** (explicit SWAPs in the input are free wire relabelings and
//! must not reach the router as work).

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;
use mirage_math::{Mat2, Mat4};

/// Remove gates that are (numerically) the identity: `RZ(0)`, `Phase(0)`,
/// identity `Unitary1`/`Unitary2` blocks, and friends.
pub fn remove_identities(c: &Circuit) -> Circuit {
    let out = c
        .instructions
        .iter()
        .filter(|instr| match &instr.gate {
            g if g.is_two_qubit() => !g.matrix2().approx_eq_up_to_phase(&Mat4::identity(), 1e-10),
            g => !g.matrix1().approx_eq_up_to_phase(&Mat2::identity(), 1e-10),
        })
        .cloned()
        .collect();
    Circuit {
        n_qubits: c.n_qubits,
        instructions: out,
    }
}

/// Cancel adjacent gate/inverse pairs on the same wires (`H·H`, `CX·CX`,
/// `T·T†`, …), repeating until a fixpoint. Gates must be *immediately*
/// adjacent on all of their wires for cancellation.
pub fn cancel_adjacent_inverses(c: &Circuit) -> Circuit {
    let mut instrs: Vec<Option<Instruction>> = c.instructions.iter().cloned().map(Some).collect();
    loop {
        let mut changed = false;
        let mut last_on_wire: Vec<Option<usize>> = vec![None; c.n_qubits];
        for i in 0..instrs.len() {
            let Some(instr) = instrs[i].clone() else {
                continue;
            };
            // Previous instruction index if it is the same on every wire.
            let prevs: Vec<Option<usize>> = instr.qubits.iter().map(|&q| last_on_wire[q]).collect();
            let same_prev = prevs
                .first()
                .copied()
                .flatten()
                .filter(|&p| prevs.iter().all(|&x| x == Some(p)));
            if let Some(p) = same_prev {
                if let Some(prev) = instrs[p].clone() {
                    if prev.qubits == instr.qubits && cancels(&prev.gate, &instr.gate) {
                        instrs[p] = None;
                        instrs[i] = None;
                        changed = true;
                        for &q in &instr.qubits {
                            last_on_wire[q] = None;
                        }
                        continue;
                    }
                }
            }
            for &q in &instr.qubits {
                last_on_wire[q] = Some(i);
            }
        }
        if !changed {
            break;
        }
    }
    Circuit {
        n_qubits: c.n_qubits,
        instructions: instrs.into_iter().flatten().collect(),
    }
}

/// True when `b` undoes `a` on identical operand order.
fn cancels(a: &Gate, b: &Gate) -> bool {
    if a.arity() != b.arity() {
        return false;
    }
    if a.is_two_qubit() {
        a.matrix2()
            .mul(&b.matrix2())
            .approx_eq_up_to_phase(&Mat4::identity(), 1e-10)
    } else {
        a.matrix1()
            .mul(&b.matrix1())
            .approx_eq_up_to_phase(&Mat2::identity(), 1e-10)
    }
}

/// Merge runs of equal-axis rotations on a wire: `RZ(a)·RZ(b) → RZ(a+b)`
/// (likewise RX/RY/Phase), dropping merged gates that reach the identity.
pub fn merge_rotations(c: &Circuit) -> Circuit {
    let mut out: Vec<Instruction> = Vec::with_capacity(c.instructions.len());
    let mut last_on_wire: Vec<Option<usize>> = vec![None; c.n_qubits];
    for instr in &c.instructions {
        if instr.qubits.len() == 1 {
            let q = instr.qubits[0];
            if let Some(p) = last_on_wire[q] {
                if let Some(merged) = merge_pair(&out[p].gate, &instr.gate) {
                    out[p].gate = merged;
                    continue;
                }
            }
            last_on_wire[q] = Some(out.len());
            out.push(instr.clone());
        } else {
            for &q in &instr.qubits {
                last_on_wire[q] = None;
            }
            out.push(instr.clone());
        }
    }
    // Drop rotations that merged to zero.
    let kept = out
        .into_iter()
        .filter(|i| match i.gate {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) => {
                mirage_math::wrap_mod(t, std::f64::consts::TAU).abs() > 1e-12
                    && (mirage_math::wrap_mod(t, std::f64::consts::TAU) - std::f64::consts::TAU)
                        .abs()
                        > 1e-12
            }
            _ => true,
        })
        .collect();
    Circuit {
        n_qubits: c.n_qubits,
        instructions: kept,
    }
}

fn merge_pair(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::Rx(x), Gate::Rx(y)) => Some(Gate::Rx(x + y)),
        (Gate::Ry(x), Gate::Ry(y)) => Some(Gate::Ry(x + y)),
        (Gate::Rz(x), Gate::Rz(y)) => Some(Gate::Rz(x + y)),
        (Gate::Phase(x), Gate::Phase(y)) => Some(Gate::Phase(x + y)),
        _ => None,
    }
}

/// Remove explicit SWAP gates by relabeling downstream wires (the paper's
/// input cleaning "removing SWAPs"). Returns the cleaned circuit and the
/// output permutation `perm` with `perm[original_wire] = output_wire`: the
/// state that the original circuit leaves on wire `w` appears on wire
/// `perm[w]` of the cleaned circuit... inverted bookkeeping is handled for
/// the caller by [`elide_swaps`]'s contract tests below.
pub fn elide_swaps(c: &Circuit) -> (Circuit, Vec<usize>) {
    // target[w] = the wire a gate addressed to original wire `w` must use
    // once the SWAPs so far have been elided.
    let mut target: Vec<usize> = (0..c.n_qubits).collect();
    let mut out: Vec<Instruction> = Vec::with_capacity(c.instructions.len());
    for instr in &c.instructions {
        if matches!(instr.gate, Gate::Swap) {
            let (a, b) = (instr.qubits[0], instr.qubits[1]);
            target.swap(a, b);
            continue;
        }
        out.push(Instruction {
            gate: instr.gate.clone(),
            qubits: instr.qubits.iter().map(|&q| target[q]).collect(),
        });
    }
    (
        Circuit {
            n_qubits: c.n_qubits,
            instructions: out,
        },
        target,
    )
}

/// The standard input-cleaning bundle: identity removal → rotation merging
/// → inverse cancellation (fixpoint). SWAP elision is *not* included
/// because it changes the output permutation; the pipeline calls it
/// explicitly.
pub fn clean(c: &Circuit) -> Circuit {
    let mut cur = remove_identities(c);
    loop {
        let next = cancel_adjacent_inverses(&merge_rotations(&cur));
        if next.instructions.len() == cur.instructions.len() {
            return next;
        }
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{equivalent_on_zero, run};

    #[test]
    fn removes_identity_rotations() {
        let mut c = Circuit::new(2);
        c.rz(0.0, 0).h(0).rx(0.0, 1).cx(0, 1);
        let out = remove_identities(&c);
        assert_eq!(out.instructions.len(), 2);
        assert!(equivalent_on_zero(&c, &out, None));
    }

    #[test]
    fn cancels_hh_and_cxcx() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).cx(0, 1).cx(0, 1).t(1);
        let out = cancel_adjacent_inverses(&c);
        assert_eq!(out.instructions.len(), 1);
        assert!(equivalent_on_zero(&c, &out, None));
    }

    #[test]
    fn cancellation_respects_interference() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(1).cx(0, 1); // H blocks the cancellation
        let out = cancel_adjacent_inverses(&c);
        assert_eq!(out.instructions.len(), 3);
    }

    #[test]
    fn cancellation_cascades() {
        // T · (H · H) · T† — inner pair cancels, then the outer pair.
        let mut c = Circuit::new(1);
        c.t(0).h(0).h(0).tdg(0);
        let out = cancel_adjacent_inverses(&c);
        assert_eq!(out.instructions.len(), 0);
    }

    #[test]
    fn merges_rotations() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0).rz(0.4, 0).rz(-0.7, 0);
        let out = merge_rotations(&c);
        assert_eq!(out.instructions.len(), 0, "sums to zero");
        let mut c2 = Circuit::new(1);
        c2.rx(0.3, 0).rx(0.5, 0);
        let out2 = merge_rotations(&c2);
        assert_eq!(out2.instructions.len(), 1);
        assert!(equivalent_on_zero(&c2, &out2, None));
    }

    #[test]
    fn rotation_merge_blocked_by_2q() {
        let mut c = Circuit::new(2);
        c.rz(0.3, 0).cx(0, 1).rz(0.4, 0);
        let out = merge_rotations(&c);
        assert_eq!(out.instructions.len(), 3);
    }

    #[test]
    fn elide_swaps_removes_all_swaps() {
        let mut c = Circuit::new(3);
        c.h(0).swap(0, 1).cx(1, 2).swap(1, 2).x(2);
        let (out, perm) = elide_swaps(&c);
        assert_eq!(out.swap_count(), 0);
        assert_eq!(out.instructions.len(), 3);
        // Semantics: the elided circuit equals the original with outputs
        // permuted by `perm`.
        let s_orig = run(&c);
        let s_new = run(&out);
        let expected = s_new.permuted(&invert(&perm));
        let _ = expected;
        // original wire w's content sits on wire... verify via fidelity of
        // permuted states.
        let s_reordered = s_orig.permuted(&perm_to_positions(&perm));
        assert!(
            s_reordered.fidelity(&s_new) > 1.0 - 1e-9,
            "elision changed semantics"
        );
    }

    fn invert(p: &[usize]) -> Vec<usize> {
        let mut inv = vec![0usize; p.len()];
        for (i, &v) in p.iter().enumerate() {
            inv[v] = i;
        }
        inv
    }

    /// `wire_of[orig] = new` — as a qubit-relabel permutation for
    /// `State::permuted` (which maps bit q -> bit perm[q]).
    fn perm_to_positions(wire_of: &[usize]) -> Vec<usize> {
        wire_of.to_vec()
    }

    #[test]
    fn elide_trailing_swap_only_permutes() {
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1);
        let (out, perm) = elide_swaps(&c);
        assert_eq!(out.instructions.len(), 1);
        assert_eq!(perm, vec![1, 0]);
        // X lands on wire 0 still (it executed before the swap)… and the
        // swap's effect is recorded purely in perm.
        assert_eq!(out.instructions[0].qubits, vec![0]);
    }

    #[test]
    fn elide_initial_swap_relabels_gates() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).x(0);
        let (out, perm) = elide_swaps(&c);
        assert_eq!(out.instructions.len(), 1);
        // After eliding the swap, "wire 0" content is what was wire 1:
        // the X must act on the relabeled wire.
        assert_eq!(out.instructions[0].qubits, vec![1]);
        assert_eq!(perm, vec![1, 0]);
    }

    #[test]
    fn clean_bundle_fixpoint() {
        let mut c = Circuit::new(2);
        c.rz(0.2, 0).rz(-0.2, 0).h(1).h(1).cx(0, 1).cx(0, 1).t(0);
        let out = clean(&c);
        assert_eq!(out.instructions.len(), 1);
        assert_eq!(out.instructions[0].gate, Gate::T);
    }

    #[test]
    fn clean_preserves_semantics_random() {
        let mut rng = mirage_math::Rng::new(0xC1EA);
        for _ in 0..10 {
            let mut c = Circuit::new(3);
            for _ in 0..15 {
                match rng.below(4) {
                    0 => {
                        let q = rng.below(3);
                        c.h(q);
                    }
                    1 => {
                        let q = rng.below(3);
                        c.rz(rng.uniform_range(-1.0, 1.0), q);
                    }
                    2 => {
                        let a = rng.below(3);
                        c.cx(a, (a + 1) % 3);
                    }
                    _ => {
                        let q = rng.below(3);
                        c.t(q);
                    }
                }
            }
            let out = clean(&c);
            assert!(equivalent_on_zero(&c, &out, None));
            assert!(out.instructions.len() <= c.instructions.len());
        }
    }
}
