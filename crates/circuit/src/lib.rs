//! Quantum circuit IR, DAG, simulator, block consolidation, and benchmark
//! circuit generators.
//!
//! This crate is the reproduction of the slice of Qiskit the MIRAGE
//! transpiler runs on:
//!
//! * [`gate::Gate`] — the gate vocabulary (standard 1Q/2Q gates plus opaque
//!   consolidated [`gate::Gate::Unitary2`] blocks).
//! * [`circuit::Circuit`] — a flat instruction list with builder methods,
//!   depth/counting metrics, and inversion.
//! * [`dag::Dag`] — the dependency DAG used by the routers (front layer,
//!   weighted critical path).
//! * [`sim`] — a statevector simulator used by the test-suite to prove
//!   routed circuits are semantically equivalent to their inputs (up to the
//!   output permutation routing introduces).
//! * [`consolidate`] — `ConsolidateBlocks`: merge runs of gates acting on
//!   the same qubit pair into single two-qubit unitary blocks, with the
//!   exterior-1Q-stripping cache key of paper Fig. 13a.
//! * [`generators`] — structurally faithful equivalents of the
//!   QASMBench/MQTBench circuits in the paper's Table III.
//!
//! ---
//! **Owns:** [`gate::Gate`], [`circuit::Circuit`], [`dag::Dag`], [`sim`],
//! [`consolidate`], [`passes`], [`qasm`], [`generators`].
//! **Paper:** the Qiskit slice of §V — input cleaning, block
//! consolidation (Fig. 13a's cache key), and the Table III benchmark
//! suite.

pub mod circuit;
pub mod consolidate;
pub mod dag;
pub mod gate;
pub mod generators;
pub mod passes;
pub mod qasm;
pub mod render;
pub mod sim;

pub use circuit::{Circuit, Instruction};
pub use dag::Dag;
pub use gate::Gate;
