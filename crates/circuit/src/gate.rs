//! The gate vocabulary.

use mirage_gates::{oneq, twoq};
use mirage_math::{Mat2, Mat4};

/// A quantum gate. Two-qubit gate matrices follow the convention of
/// [`mirage_math::Mat4`]: the *first* qubit listed in an instruction is the
/// high (most-significant) qubit, and controlled gates take it as control.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate S.
    S,
    /// S†.
    Sdg,
    /// T gate.
    T,
    /// T†.
    Tdg,
    /// X rotation.
    Rx(f64),
    /// Y rotation.
    Ry(f64),
    /// Z rotation.
    Rz(f64),
    /// diag(1, e^{iλ}).
    Phase(f64),
    /// General ZYZ rotation `U(θ,φ,λ)`.
    U3(f64, f64, f64),
    /// Opaque single-qubit unitary.
    Unitary1(Mat2),
    /// CNOT (first qubit is control).
    Cx,
    /// Controlled-Z.
    Cz,
    /// Controlled-phase.
    Cphase(f64),
    /// Controlled-RY (first qubit is control).
    Cry(f64),
    /// SWAP.
    Swap,
    /// iSWAP.
    ISwap,
    /// `iSWAP^α` — the paper's fractional iSWAP family.
    ISwapPow(f64),
    /// `exp(−iθ/2·XX)`.
    Rxx(f64),
    /// `exp(−iθ/2·YY)`.
    Ryy(f64),
    /// `exp(−iθ/2·ZZ)`.
    Rzz(f64),
    /// Opaque two-qubit unitary (consolidated block).
    Unitary2(Mat4),
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::U3(..)
            | Gate::Unitary1(_) => 1,
            _ => 2,
        }
    }

    /// True for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        self.arity() == 2
    }

    /// The 2×2 matrix of a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics when called on a two-qubit gate.
    pub fn matrix1(&self) -> Mat2 {
        match self {
            Gate::H => oneq::h(),
            Gate::X => oneq::x(),
            Gate::Y => oneq::y(),
            Gate::Z => oneq::z(),
            Gate::S => oneq::s(),
            Gate::Sdg => oneq::sdg(),
            Gate::T => oneq::t(),
            Gate::Tdg => oneq::tdg(),
            Gate::Rx(t) => oneq::rx(*t),
            Gate::Ry(t) => oneq::ry(*t),
            Gate::Rz(t) => oneq::rz(*t),
            Gate::Phase(l) => oneq::phase(*l),
            Gate::U3(t, p, l) => oneq::u_zyz(*t, *p, *l),
            Gate::Unitary1(m) => *m,
            _ => panic!("matrix1 called on two-qubit gate {self:?}"),
        }
    }

    /// The 4×4 matrix of a two-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics when called on a single-qubit gate.
    pub fn matrix2(&self) -> Mat4 {
        match self {
            Gate::Cx => twoq::cnot(),
            Gate::Cz => twoq::cz(),
            Gate::Cphase(t) => twoq::cphase(*t),
            Gate::Cry(t) => {
                // |0⟩⟨0|⊗I + |1⟩⟨1|⊗RY(θ), control on the high qubit.
                let ry = oneq::ry(*t);
                let mut m = Mat4::identity();
                for i in 0..2 {
                    for j in 0..2 {
                        m.e[2 + i][2 + j] = ry.e[i][j];
                    }
                }
                m
            }
            Gate::Swap => twoq::swap(),
            Gate::ISwap => twoq::iswap(),
            Gate::ISwapPow(a) => twoq::iswap_alpha(*a),
            Gate::Rxx(t) => twoq::rxx(*t),
            Gate::Ryy(t) => twoq::ryy(*t),
            Gate::Rzz(t) => twoq::rzz(*t),
            Gate::Unitary2(m) => *m,
            _ => panic!("matrix2 called on single-qubit gate {self:?}"),
        }
    }

    /// Short lowercase name for display and statistics.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::U3(..) => "u3",
            Gate::Unitary1(_) => "unitary1",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Cphase(_) => "cp",
            Gate::Cry(_) => "cry",
            Gate::Swap => "swap",
            Gate::ISwap => "iswap",
            Gate::ISwapPow(_) => "iswap_pow",
            Gate::Rxx(_) => "rxx",
            Gate::Ryy(_) => "ryy",
            Gate::Rzz(_) => "rzz",
            Gate::Unitary2(_) => "unitary2",
        }
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::H | Gate::X | Gate::Y | Gate::Z | Gate::Cx | Gate::Cz | Gate::Swap => {
                self.clone()
            }
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(l) => Gate::Phase(-l),
            Gate::U3(..) => Gate::Unitary1(self.matrix1().adjoint()),
            Gate::Unitary1(m) => Gate::Unitary1(m.adjoint()),
            Gate::Cphase(t) => Gate::Cphase(-t),
            Gate::Cry(t) => Gate::Cry(-t),
            Gate::ISwap => Gate::ISwapPow(-1.0),
            Gate::ISwapPow(a) => Gate::ISwapPow(-a),
            Gate::Rxx(t) => Gate::Rxx(-t),
            Gate::Ryy(t) => Gate::Ryy(-t),
            Gate::Rzz(t) => Gate::Rzz(-t),
            Gate::Unitary2(m) => Gate::Unitary2(m.adjoint()),
        }
    }

    /// True when the gate is symmetric under exchanging its qubits
    /// (matrix commutes with SWAP). Symmetric gates let routers reverse
    /// operand order for free.
    pub fn is_symmetric(&self) -> bool {
        matches!(
            self,
            Gate::Cz
                | Gate::Cphase(_)
                | Gate::Swap
                | Gate::ISwap
                | Gate::ISwapPow(_)
                | Gate::Rxx(_)
                | Gate::Ryy(_)
                | Gate::Rzz(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_classification() {
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Rz(0.3).arity(), 1);
        assert_eq!(Gate::Cx.arity(), 2);
        assert_eq!(Gate::Unitary2(Mat4::swap()).arity(), 2);
        assert!(Gate::Swap.is_two_qubit());
        assert!(!Gate::T.is_two_qubit());
    }

    #[test]
    fn all_matrices_unitary() {
        let ones = [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.7),
            Gate::Ry(-0.2),
            Gate::Rz(2.1),
            Gate::Phase(0.4),
            Gate::U3(0.1, 0.2, 0.3),
        ];
        for g in ones {
            assert!(g.matrix1().is_unitary(1e-10), "{g:?}");
        }
        let twos = [
            Gate::Cx,
            Gate::Cz,
            Gate::Cphase(0.5),
            Gate::Cry(1.1),
            Gate::Swap,
            Gate::ISwap,
            Gate::ISwapPow(0.5),
            Gate::Rxx(0.3),
            Gate::Ryy(0.4),
            Gate::Rzz(0.5),
        ];
        for g in twos {
            assert!(g.matrix2().is_unitary(1e-10), "{g:?}");
        }
    }

    #[test]
    fn inverse_matrices_cancel() {
        let twos = [
            Gate::Cx,
            Gate::Cphase(0.5),
            Gate::Cry(1.1),
            Gate::ISwap,
            Gate::ISwapPow(0.5),
            Gate::Rzz(0.5),
        ];
        for g in twos {
            let prod = g.matrix2().mul(&g.inverse().matrix2());
            assert!(prod.approx_eq_up_to_phase(&Mat4::identity(), 1e-9), "{g:?}");
        }
        let ones = [Gate::S, Gate::T, Gate::Rx(0.4), Gate::U3(0.1, 0.2, 0.3)];
        for g in ones {
            let prod = g.matrix1().mul(&g.inverse().matrix1());
            assert!(prod.approx_eq_up_to_phase(&Mat2::identity(), 1e-9), "{g:?}");
        }
    }

    #[test]
    fn cry_controls_high_qubit() {
        let m = Gate::Cry(std::f64::consts::PI).matrix2();
        // Control |0⟩ block untouched.
        assert!(m.e[0][0].approx_eq(mirage_math::Complex64::ONE, 1e-12));
        assert!(m.e[1][1].approx_eq(mirage_math::Complex64::ONE, 1e-12));
        // RY(π) = [[0,-1],[1,0]] on the |1⟩ block.
        assert!(m.e[2][3].approx_eq(mirage_math::Complex64::real(-1.0), 1e-12));
        assert!(m.e[3][2].approx_eq(mirage_math::Complex64::ONE, 1e-12));
    }

    #[test]
    fn symmetric_gates() {
        let s = Mat4::swap();
        for g in [Gate::Cz, Gate::ISwap, Gate::Swap, Gate::Rzz(0.7)] {
            assert!(g.is_symmetric());
            let m = g.matrix2();
            assert!(s.mul(&m).mul(&s).approx_eq(&m, 1e-12), "{g:?}");
        }
        assert!(!Gate::Cx.is_symmetric());
        let m = Gate::Cx.matrix2();
        assert!(!s.mul(&m).mul(&s).approx_eq(&m, 1e-12));
    }

    #[test]
    #[should_panic(expected = "matrix1 called on two-qubit")]
    fn matrix1_on_two_qubit_panics() {
        let _ = Gate::Cx.matrix1();
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Gate::Cx.name(), "cx");
        assert_eq!(Gate::ISwapPow(0.5).name(), "iswap_pow");
    }
}
