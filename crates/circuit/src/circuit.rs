//! Flat circuit representation with builder methods and metrics.

use crate::gate::Gate;

/// One gate application.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The gate.
    pub gate: Gate,
    /// Qubit operands; for two-qubit gates the first is the high qubit
    /// (control for controlled gates).
    pub qubits: Vec<usize>,
}

/// A quantum circuit: a number of qubits plus an ordered instruction list.
///
/// ```
/// use mirage_circuit::Circuit;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.depth(), 2);
/// assert_eq!(c.two_qubit_gate_count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    /// Number of qubits.
    pub n_qubits: usize,
    /// The instruction sequence (topological order).
    pub instructions: Vec<Instruction>,
}

impl Circuit {
    /// An empty circuit on `n` qubits.
    pub fn new(n_qubits: usize) -> Circuit {
        Circuit {
            n_qubits,
            instructions: Vec::new(),
        }
    }

    /// Append an arbitrary gate.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the gate arity, a qubit
    /// index is out of range, or a two-qubit gate's operands coincide.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        assert_eq!(
            gate.arity(),
            qubits.len(),
            "gate {} expects {} operands, got {:?}",
            gate.name(),
            gate.arity(),
            qubits
        );
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate on identical qubits");
        }
        self.instructions.push(Instruction {
            gate,
            qubits: qubits.to_vec(),
        });
        self
    }

    /// Append a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H, &[q])
    }

    /// Append a Pauli X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X, &[q])
    }

    /// Append an RX rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Rx(theta), &[q])
    }

    /// Append an RY rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Ry(theta), &[q])
    }

    /// Append an RZ rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Rz(theta), &[q])
    }

    /// Append a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T, &[q])
    }

    /// Append a T†.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Tdg, &[q])
    }

    /// Append a CNOT (control first).
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::Cx, &[c, t])
    }

    /// Append a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz, &[a, b])
    }

    /// Append a controlled-phase.
    pub fn cp(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cphase(theta), &[a, b])
    }

    /// Append a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap, &[a, b])
    }

    /// Append a Toffoli (CCX) decomposed into the standard 6-CNOT + T
    /// network (control qubits `a`, `b`, target `t`).
    pub fn ccx(&mut self, a: usize, b: usize, t: usize) -> &mut Self {
        self.h(t)
            .cx(b, t)
            .tdg(t)
            .cx(a, t)
            .t(t)
            .cx(b, t)
            .tdg(t)
            .cx(a, t)
            .t(b)
            .t(t)
            .h(t)
            .cx(a, b)
            .t(a)
            .tdg(b)
            .cx(a, b)
    }

    /// Append a Fredkin (controlled-SWAP) as `CX(t2,t1)·CCX(c,t1,t2)·CX(t2,t1)`
    /// (8 two-qubit gates after the Toffoli expansion — matching the
    /// QASMBench accounting).
    pub fn cswap(&mut self, c: usize, t1: usize, t2: usize) -> &mut Self {
        self.cx(t2, t1).ccx(c, t1, t2).cx(t2, t1)
    }

    /// Total gate count.
    pub fn gate_count(&self) -> usize {
        self.instructions.len()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.is_two_qubit())
            .count()
    }

    /// Number of explicit SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i.gate, Gate::Swap))
            .count()
    }

    /// Standard circuit depth (each gate counts 1).
    pub fn depth(&self) -> usize {
        self.weighted_depth(|_| 1.0).round() as usize
    }

    /// Depth counting only two-qubit gates (single-qubit gates are free).
    pub fn depth_2q(&self) -> usize {
        self.weighted_depth(|i| if i.gate.is_two_qubit() { 1.0 } else { 0.0 })
            .round() as usize
    }

    /// Longest path through the circuit where each instruction contributes
    /// `weight(instr)` — the critical-path duration metric MIRAGE optimizes
    /// (paper §IV-B).
    pub fn weighted_depth<F: Fn(&Instruction) -> f64>(&self, weight: F) -> f64 {
        let mut ready = vec![0.0f64; self.n_qubits];
        for instr in &self.instructions {
            let start = instr
                .qubits
                .iter()
                .map(|&q| ready[q])
                .fold(0.0f64, f64::max);
            let end = start + weight(instr);
            for &q in &instr.qubits {
                ready[q] = end;
            }
        }
        ready.iter().copied().fold(0.0, f64::max)
    }

    /// Concatenate another circuit (must have the same qubit count).
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.n_qubits, other.n_qubits, "qubit count mismatch");
        self.instructions.extend(other.instructions.iter().cloned());
        self
    }

    /// The inverse circuit (reversed order, inverted gates).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            instructions: self
                .instructions
                .iter()
                .rev()
                .map(|i| Instruction {
                    gate: i.gate.inverse(),
                    qubits: i.qubits.clone(),
                })
                .collect(),
        }
    }

    /// The reversed circuit (gates in reverse order, not inverted) — used
    /// by SABRE's forward–backward layout passes.
    pub fn reversed(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            instructions: self.instructions.iter().rev().cloned().collect(),
        }
    }

    /// Per-gate-name histogram.
    pub fn gate_histogram(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut h = std::collections::BTreeMap::new();
        for i in &self.instructions {
            *h.entry(i.gate.name()).or_insert(0) += 1;
        }
        h
    }

    /// Remap qubit indices through `perm` (`new_q = perm[old_q]`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n_qubits`.
    pub fn relabeled(&self, perm: &[usize]) -> Circuit {
        assert_eq!(perm.len(), self.n_qubits, "permutation length mismatch");
        let mut seen = vec![false; self.n_qubits];
        for &p in perm {
            assert!(p < self.n_qubits && !seen[p], "not a permutation");
            seen[p] = true;
        }
        Circuit {
            n_qubits: self.n_qubits,
            instructions: self
                .instructions
                .iter()
                .map(|i| Instruction {
                    gate: i.gate.clone(),
                    qubits: i.qubits.iter().map(|&q| perm[q]).collect(),
                })
                .collect(),
        }
    }

    /// The set of qubit pairs touched by two-qubit gates (the interaction
    /// graph edges, normalized to `lo < hi`).
    pub fn interaction_edges(&self) -> std::collections::BTreeSet<(usize, usize)> {
        self.instructions
            .iter()
            .filter(|i| i.gate.is_two_qubit())
            .map(|i| {
                let (a, b) = (i.qubits[0], i.qubits[1]);
                (a.min(b), a.max(b))
            })
            .collect()
    }

    /// A stable 64-bit structural fingerprint: FNV-1a over the qubit count
    /// and every instruction (gate name, exact parameter bits — including
    /// the full matrices of opaque `Unitary1`/`Unitary2` blocks — and
    /// operand order). Two circuits fingerprint equally iff they are equal
    /// as instruction sequences, up to 64-bit collision odds.
    ///
    /// The routing golden tests and the `routing_runtime` perf gate pin
    /// these values to prove optimizations are bit-identical; the hash is
    /// independent of pointer addresses, platform, and process, so pinned
    /// constants stay valid across runs and machines.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.n_qubits as u64);
        for instr in &self.instructions {
            h.write_bytes(instr.gate.name().as_bytes());
            match &instr.gate {
                Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) => h.write_f64(*t),
                Gate::U3(t, p, l) => {
                    h.write_f64(*t);
                    h.write_f64(*p);
                    h.write_f64(*l);
                }
                Gate::Cphase(t) | Gate::Cry(t) | Gate::ISwapPow(t) => h.write_f64(*t),
                Gate::Rxx(t) | Gate::Ryy(t) | Gate::Rzz(t) => h.write_f64(*t),
                Gate::Unitary1(m) => {
                    for row in &m.e {
                        for z in row {
                            h.write_f64(z.re);
                            h.write_f64(z.im);
                        }
                    }
                }
                Gate::Unitary2(m) => {
                    for row in &m.e {
                        for z in row {
                            h.write_f64(z.re);
                            h.write_f64(z.im);
                        }
                    }
                }
                _ => {}
            }
            for &q in &instr.qubits {
                h.write_u64(q as u64);
            }
        }
        h.finish()
    }
}

/// Minimal FNV-1a (64-bit) for [`Circuit::fingerprint`] — deterministic
/// across processes, unlike `DefaultHasher` whose keys are unspecified.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xCBF2_9CE4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2).swap(0, 2);
        assert_eq!(c.gate_count(), 5);
        assert_eq!(c.two_qubit_gate_count(), 3);
        assert_eq!(c.swap_count(), 1);
    }

    #[test]
    fn depth_parallel_gates() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3); // parallel
        assert_eq!(c.depth(), 1);
        c.cx(1, 2); // forces a second layer
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn weighted_depth_with_durations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        // h = 0, cx = 1.0: critical path = 1.0
        let d = c.weighted_depth(|i| if i.gate.is_two_qubit() { 1.0 } else { 0.0 });
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depth_2q_ignores_singles() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).h(0).cx(0, 1);
        assert_eq!(c.depth_2q(), 2);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.t(0).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.instructions[0].gate, Gate::Cx);
        assert_eq!(inv.instructions[1].gate, Gate::Tdg);
    }

    #[test]
    fn ccx_expands_to_six_cnots() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert_eq!(c.two_qubit_gate_count(), 6);
    }

    #[test]
    fn cswap_expands_to_eight() {
        let mut c = Circuit::new(3);
        c.cswap(0, 1, 2);
        assert_eq!(c.two_qubit_gate_count(), 8);
    }

    #[test]
    fn relabeled_permutes() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let r = c.relabeled(&[2, 1, 0]);
        assert_eq!(r.instructions[0].qubits, vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabeled_rejects_non_permutation() {
        let c = Circuit::new(2);
        let _ = c.relabeled(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "identical qubits")]
    fn two_qubit_same_operand_panics() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut c = Circuit::new(2);
        c.h(5);
    }

    #[test]
    fn interaction_edges_normalized() {
        let mut c = Circuit::new(3);
        c.cx(2, 0).cx(0, 2).cx(1, 2);
        let edges = c.interaction_edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&(0, 2)));
        assert!(edges.contains(&(1, 2)));
    }

    #[test]
    fn histogram_counts() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let h = c.gate_histogram();
        assert_eq!(h["h"], 2);
        assert_eq!(h["cx"], 1);
    }

    #[test]
    fn reversed_keeps_gates() {
        let mut c = Circuit::new(2);
        c.t(0).cx(0, 1);
        let r = c.reversed();
        assert_eq!(r.instructions[0].gate, Gate::Cx);
        assert_eq!(r.instructions[1].gate, Gate::T);
    }

    #[test]
    fn fingerprint_separates_structure() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).rz(0.25, 2);
        let mut b = Circuit::new(3);
        b.h(0).cx(0, 1).rz(0.25, 2);
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal circuits agree");

        // Operand order, parameters, qubit count, and gate identity all
        // perturb the hash.
        let mut flipped = Circuit::new(3);
        flipped.h(0).cx(1, 0).rz(0.25, 2);
        assert_ne!(a.fingerprint(), flipped.fingerprint());
        let mut param = Circuit::new(3);
        param.h(0).cx(0, 1).rz(0.26, 2);
        assert_ne!(a.fingerprint(), param.fingerprint());
        let mut wider = Circuit::new(4);
        wider.h(0).cx(0, 1).rz(0.25, 2);
        assert_ne!(a.fingerprint(), wider.fingerprint());

        // Opaque blocks hash their full matrix.
        let mut u = Circuit::new(2);
        u.push(Gate::Unitary2(crate::gate::Gate::Swap.matrix2()), &[0, 1]);
        let mut v = Circuit::new(2);
        v.push(Gate::Unitary2(crate::gate::Gate::Cx.matrix2()), &[0, 1]);
        assert_ne!(u.fingerprint(), v.fingerprint());
    }

    #[test]
    fn fingerprint_is_pinned() {
        // The value is part of the golden-test contract: it must never
        // change across runs, platforms, or refactors of the hasher.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        assert_eq!(c.fingerprint(), c.fingerprint());
        let empty = Circuit::new(0);
        assert_eq!(empty.fingerprint(), 0xA8C7_F832_281A_39C5);
    }
}
