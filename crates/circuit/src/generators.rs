//! Benchmark circuit generators — structurally faithful equivalents of the
//! QASMBench/MQTBench circuits in the paper's Table III.
//!
//! The reproduction cannot ship the original QASM files, so each generator
//! rebuilds the circuit family from its published construction, at the same
//! qubit counts, and with two-qubit gate counts matching Table III (which
//! counts gates **after CX decomposition**: a `cp` is 2 CX, a `swap` 3, a
//! `cry` 2 — see [`cx_equivalent_count`]).
//!
//! | name | qubits | 2Q gates (CX-equiv) | class |
//! |------|--------|---------------------|-------|
//! | wstate | 27 | 52 | Entanglement |
//! | qftentangled | 16 | 279 | Hidden Subgroup |
//! | qpeexact | 16 | 261 | Hidden Subgroup |
//! | ae | 16 | 240 | Hidden Subgroup |
//! | qft | 18 | 306 | Hidden Subgroup |
//! | bv | 30 | 18 | Hidden Subgroup |
//! | multiplier | 15 | ≈219 (paper 246) | Arithmetic |
//! | bigadder | 18 | ≈130 | Arithmetic |
//! | qec9xz | 17 | 32 | EC |
//! | seca | 11 | ≈84 | EC |
//! | qram | 20 | ≈92 | Memory |
//! | sat | 11 | ≈288 (paper 252) | QML/Search |
//! | portfolioqaoa | 16 | 720 | QML |
//! | knn | 25 | 96 | QML |
//! | swap_test | 25 | 96 | QML |

use crate::circuit::Circuit;
use crate::gate::Gate;
use mirage_math::Rng;

/// CX-equivalent two-qubit gate count (the accounting used by the paper's
/// Table III): `cp`/`cry`/`rzz`-style gates cost 2 CNOTs, `swap` costs 3,
/// everything else (including opaque blocks) costs its face value.
pub fn cx_equivalent_count(c: &Circuit) -> usize {
    c.instructions
        .iter()
        .filter(|i| i.gate.is_two_qubit())
        .map(|i| match i.gate {
            Gate::Cphase(_) | Gate::Cry(_) | Gate::Rzz(_) | Gate::Rxx(_) | Gate::Ryy(_) => 2,
            Gate::Swap => 3,
            Gate::ISwap | Gate::ISwapPow(_) => 2,
            _ => 1,
        })
        .sum()
}

/// GHZ state preparation: H then a CX chain.
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for i in 0..n.saturating_sub(1) {
        c.cx(i, i + 1);
    }
    c
}

/// W-state preparation (QASMBench `wstate`): a chain of controlled-RY
/// rotations followed by CX gates. `n = 27` gives 52 two-qubit gates.
pub fn wstate(n: usize) -> Circuit {
    assert!(n >= 2, "wstate needs at least 2 qubits");
    let mut c = Circuit::new(n);
    c.x(n - 1);
    for i in (0..n - 1).rev() {
        // Distribute amplitude |1⟩ from qubit i+1 onto qubit i.
        let theta = 2.0 * (1.0 / ((i + 2) as f64)).sqrt().acos();
        c.push(Gate::Cry(theta), &[i + 1, i]);
        c.cx(i, i + 1);
    }
    c
}

/// Bernstein–Vazirani with an `ones`-bit secret on `n−1` input qubits plus
/// one oracle qubit. `bv(30, 18)` reproduces the paper's instance.
pub fn bv(n: usize, ones: usize) -> Circuit {
    assert!(n >= 2 && ones < n, "invalid bv parameters");
    let mut c = Circuit::new(n);
    let target = n - 1;
    c.x(target).h(target);
    for q in 0..n - 1 {
        c.h(q);
    }
    // Spread the secret's one-bits evenly over the input register.
    for k in 0..ones {
        let q = k * (n - 1) / ones;
        c.cx(q, target);
    }
    for q in 0..n - 1 {
        c.h(q);
    }
    c
}

/// Quantum Fourier transform. `with_swaps` appends the final bit-reversal
/// SWAP network (MQTBench's `qft` omits it; `qpe` uses it inverted).
pub fn qft(n: usize, with_swaps: bool) -> Circuit {
    let mut c = Circuit::new(n);
    qft_into(&mut c, &(0..n).collect::<Vec<_>>(), with_swaps);
    c
}

/// Append a QFT on the given qubit line to an existing circuit.
fn qft_into(c: &mut Circuit, qs: &[usize], with_swaps: bool) {
    let n = qs.len();
    for i in 0..n {
        c.h(qs[i]);
        for j in (i + 1)..n {
            let theta = std::f64::consts::PI / f64::powi(2.0, (j - i) as i32);
            c.cp(theta, qs[j], qs[i]);
        }
    }
    if with_swaps {
        for i in 0..n / 2 {
            c.swap(qs[i], qs[n - 1 - i]);
        }
    }
}

/// MQTBench `qftentangled`: GHZ preparation followed by a QFT with final
/// swaps. `n = 16` gives 279 CX-equivalent gates.
pub fn qft_entangled(n: usize) -> Circuit {
    let mut c = ghz(n);
    qft_into(&mut c, &(0..n).collect::<Vec<_>>(), true);
    c
}

/// MQTBench `qpeexact`: quantum phase estimation of an exactly
/// representable phase; `n` includes the single eigenstate qubit.
/// `n = 16` gives 261 CX-equivalent gates.
pub fn qpe_exact(n: usize) -> Circuit {
    assert!(n >= 3, "qpe needs ≥ 3 qubits");
    let counting = n - 1;
    let target = n - 1;
    let mut c = Circuit::new(n);
    // Eigenstate |1⟩ of the phase gate.
    c.x(target);
    for q in 0..counting {
        c.h(q);
    }
    // Controlled powers of U = P(2π·φ) with φ = 1/2^counting ·(pattern).
    let phi = std::f64::consts::TAU * 0.3125; // exactly representable in 5 bits
    for (e, q) in (0..counting).enumerate() {
        let theta = phi * f64::powi(2.0, e as i32);
        c.cp(theta, q, target);
    }
    // Inverse QFT on the counting register.
    inverse_qft_into(&mut c, &(0..counting).collect::<Vec<_>>());
    c
}

fn inverse_qft_into(c: &mut Circuit, qs: &[usize]) {
    let n = qs.len();
    for i in 0..n / 2 {
        c.swap(qs[i], qs[n - 1 - i]);
    }
    for i in (0..n).rev() {
        for j in ((i + 1)..n).rev() {
            let theta = -std::f64::consts::PI / f64::powi(2.0, (j - i) as i32);
            c.cp(theta, qs[j], qs[i]);
        }
        c.h(qs[i]);
    }
}

/// MQTBench `ae` (amplitude estimation): Grover-operator powers controlled
/// by a counting register, then an inverse QFT. `n = 16` gives ≈240
/// CX-equivalent gates.
pub fn amplitude_estimation(n: usize) -> Circuit {
    assert!(n >= 3, "ae needs ≥ 3 qubits");
    let counting = n - 1;
    let target = n - 1;
    let mut c = Circuit::new(n);
    let theta0 = 2.0 * (0.3f64).sqrt().asin();
    c.ry(theta0, target);
    for q in 0..counting {
        c.h(q);
    }
    // Controlled Grover powers: Q^(2^e) acts as a Y rotation by 2^e·2θ on
    // the single-qubit state-prep subspace — exactly a controlled RY.
    for (e, q) in (0..counting).enumerate() {
        let theta = theta0 * 2.0 * f64::powi(2.0, e as i32);
        c.push(Gate::Cry(theta), &[q, target]);
    }
    inverse_qft_into(&mut c, &(0..counting).collect::<Vec<_>>());
    c
}

/// Cuccaro ripple-carry adder (QASMBench `bigadder`): adds two
/// `bits`-bit registers with one carry-in and one carry-out qubit
/// (`n = 2·bits + 2`). `bits = 8` gives the paper's 18-qubit instance with
/// ≈130 CX-equivalent gates.
pub fn cuccaro_adder(bits: usize) -> Circuit {
    assert!(bits >= 1);
    let n = 2 * bits + 2;
    let mut c = Circuit::new(n);
    // Layout: cin = 0, a_i = 1 + 2i, b_i = 2 + 2i, cout = n-1.
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let cin = 0usize;
    let cout = n - 1;

    // MAJ cascades.
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(bits - 1), cout);
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// Shift-and-add multiplier (QASMBench `multiplier`): multiplies two
/// `bits`-bit registers into a `2·bits`-bit product with controlled ripple
/// additions. `bits = 3` gives the paper's 15-qubit instance (a(3) + b(3) +
/// product(6) + 3 work qubits... laid out as 15 total) with ≈246
/// CX-equivalent gates.
pub fn multiplier(bits: usize) -> Circuit {
    assert!(bits >= 1);
    // Registers: a [0, bits), b [bits, 2bits), product [2bits, 4bits),
    // plus three carry ancillas used round-robin (QASMBench's multiplier
    // keeps a small work register; bits = 3 lands on 15 qubits).
    let n = 4 * bits + 3;
    let mut c = Circuit::new(n);
    let a = |i: usize| i;
    let b = |i: usize| bits + i;
    let p = |i: usize| 2 * bits + i;

    // Prepare nontrivial inputs so the circuit is not a no-op.
    c.x(a(0));
    c.h(b(0));
    for i in 1..bits {
        c.h(a(i));
        c.h(b(i));
    }

    // For each a_i, controlled-add b (shifted by i) into the product using
    // doubly-controlled ripple logic.
    for i in 0..bits {
        for j in 0..bits {
            let anc = 4 * bits + (i + j) % 3;
            // product[i+j] += a_i & b_j with carry into product[i+j+1].
            c.ccx(a(i), b(j), anc);
            c.cx(anc, p(i + j));
            // Propagate carry: if anc and p overflowed — approximate a
            // two-level ripple into the next product bits.
            c.ccx(anc, p(i + j), p(i + j + 1));
            if i + j + 2 < 2 * bits {
                c.ccx(p(i + j), p(i + j + 1), p(i + j + 2));
            }
            c.ccx(a(i), b(j), anc); // uncompute ancilla
        }
    }
    c
}

/// A distance-3 XZ stabilizer round on the 9-qubit lattice (QASMBench
/// `qec9xz`): 9 data qubits + 8 syndrome ancillas, 4 CX per stabilizer → 32
/// two-qubit gates.
pub fn qec9xz() -> Circuit {
    let n = 17;
    let mut c = Circuit::new(n);
    // Data qubits 0..9 in a 3×3 grid; ancillas 9..17.
    let d = |r: usize, col: usize| 3 * r + col;
    // 4 X-stabilizers (H-basis ancilla, CX ancilla→data).
    let x_stabs = [
        [d(0, 0), d(0, 1), d(1, 0), d(1, 1)],
        [d(0, 1), d(0, 2), d(1, 1), d(1, 2)],
        [d(1, 0), d(1, 1), d(2, 0), d(2, 1)],
        [d(1, 1), d(1, 2), d(2, 1), d(2, 2)],
    ];
    for (k, stab) in x_stabs.iter().enumerate() {
        let anc = 9 + k;
        c.h(anc);
        for &q in stab {
            c.cx(anc, q);
        }
        c.h(anc);
    }
    // 4 Z-stabilizers (CX data→ancilla).
    for (k, stab) in x_stabs.iter().enumerate() {
        let anc = 13 + k;
        for &q in stab {
            c.cx(q, anc);
        }
    }
    c
}

/// Shor-code error-correction round (QASMBench `seca`, 11 qubits): encode a
/// logical qubit into the 9-qubit Shor code, run syndrome extraction on two
/// ancillas, and decode. ≈84 CX-equivalent gates.
pub fn seca() -> Circuit {
    let mut c = Circuit::new(11);
    let anc = [9usize, 10usize];
    // Encode: phase-flip layer then bit-flip blocks.
    c.cx(0, 3).cx(0, 6);
    for blk in [0usize, 3, 6] {
        c.h(blk);
        c.cx(blk, blk + 1).cx(blk, blk + 2);
    }
    // Inject an error to make the syndrome round non-trivial.
    c.x(4);
    // Two rounds of syndrome extraction: ZZ pairs within blocks on anc[0],
    // XX block-pairs on anc[1].
    for _round in 0..2 {
        for blk in [0usize, 3, 6] {
            c.cx(blk, anc[0]).cx(blk + 1, anc[0]);
            c.cx(blk + 1, anc[0]).cx(blk + 2, anc[0]);
        }
        c.h(anc[1]);
        for blk in [0usize, 3] {
            for q in blk..blk + 3 {
                c.cx(anc[1], q);
            }
            for q in blk + 3..blk + 6 {
                c.cx(anc[1], q);
            }
        }
        c.h(anc[1]);
    }
    // Correction (conditioned classically in the original; here a fixed
    // Toffoli-based correction to keep the unitary structure).
    c.ccx(anc[0], anc[1], 4);
    // Decode.
    for blk in [0usize, 3, 6] {
        c.cx(blk, blk + 1).cx(blk, blk + 2);
        c.h(blk);
    }
    c.cx(0, 3).cx(0, 6);
    c
}

/// Bucket-brigade QRAM query (QASMBench `qram`, 20 qubits): address
/// register routes a bus qubit through a tree of controlled-SWAPs.
/// ≈92 CX-equivalent gates.
pub fn qram() -> Circuit {
    let n = 20;
    let mut c = Circuit::new(n);
    // addresses 0..3, bus 4, routers 5..11, cells 12..20.
    for a in 0..3 {
        c.h(a);
    }
    c.x(4);
    // Route bus down a binary tree controlled by address bits.
    c.cswap(0, 4, 5);
    c.cswap(1, 5, 6);
    c.cswap(1, 4, 7);
    c.cswap(2, 6, 8);
    c.cswap(2, 7, 9);
    c.cswap(2, 5, 10);
    c.cswap(2, 4, 11);
    // Interact with memory cells.
    for (i, r) in [8usize, 9, 10, 11].iter().enumerate() {
        c.cx(*r, 12 + 2 * i);
        c.cx(*r, 13 + 2 * i);
    }
    // Un-route.
    c.cswap(2, 4, 11);
    c.cswap(2, 5, 10);
    c.cswap(1, 4, 7);
    c.cswap(0, 4, 5);
    c
}

/// Grover search for a SAT instance (QASMBench `sat`, 11 qubits): three
/// Grover iterations with a Toffoli-chain oracle and diffusion operator.
/// ≈252 CX-equivalent gates.
pub fn sat() -> Circuit {
    let n = 11;
    let vars = 6; // variables 0..6, clause ancillas 6..10, oracle qubit 10
    let mut c = Circuit::new(n);
    for q in 0..vars {
        c.h(q);
    }
    c.x(10).h(10);
    for _iter in 0..3 {
        // Oracle: clause ancillas = AND of variable pairs, folded into the
        // oracle qubit.
        c.ccx(0, 1, 6);
        c.ccx(2, 3, 7);
        c.ccx(4, 5, 8);
        c.ccx(6, 7, 9);
        c.ccx(8, 9, 10);
        // Uncompute.
        c.ccx(6, 7, 9);
        c.ccx(4, 5, 8);
        c.ccx(2, 3, 7);
        c.ccx(0, 1, 6);
        // Diffusion on the variable register.
        for q in 0..vars {
            c.h(q).x(q);
        }
        // Multi-controlled Z via Toffoli ladder onto ancilla 9.
        c.ccx(0, 1, 6);
        c.ccx(2, 3, 7);
        c.ccx(6, 7, 8);
        c.h(5);
        c.ccx(8, 4, 5);
        c.h(5);
        c.ccx(6, 7, 8);
        c.ccx(2, 3, 7);
        c.ccx(0, 1, 6);
        for q in 0..vars {
            c.x(q).h(q);
        }
    }
    c
}

/// Portfolio-optimization QAOA (MQTBench `portfolioqaoa`): `p` alternating
/// cost/mixer layers on a fully connected `n`-qubit graph. `n = 16, p = 3`
/// gives 720 CX-equivalent gates.
pub fn portfolio_qaoa(n: usize, p: usize, seed: u64) -> Circuit {
    let mut rng = Rng::new(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for _layer in 0..p {
        let gamma = rng.uniform_range(0.1, 1.5);
        for i in 0..n {
            for j in (i + 1)..n {
                let w = rng.uniform_range(0.2, 1.0);
                c.push(Gate::Rzz(gamma * w), &[i, j]);
            }
        }
        let beta = rng.uniform_range(0.1, 1.5);
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

/// Swap-test between two `(n−1)/2`-qubit registers (QASMBench `swap_test`):
/// one ancilla controls a transversal layer of Fredkin gates.
/// `n = 25` gives 96 CX-equivalent gates.
pub fn swap_test(n: usize) -> Circuit {
    assert!(n >= 3 && n % 2 == 1, "swap_test needs odd n ≥ 3");
    let reg = (n - 1) / 2;
    let mut c = Circuit::new(n);
    c.h(0);
    // Prepare the two registers in (different) product states.
    for i in 0..reg {
        c.ry(0.3 + 0.1 * i as f64, 1 + i);
        c.ry(0.4 + 0.05 * i as f64, 1 + reg + i);
    }
    for i in 0..reg {
        c.cswap(0, 1 + i, 1 + reg + i);
    }
    c.h(0);
    c
}

/// Quantum k-nearest-neighbors kernel (QASMBench `knn`): structurally a
/// swap test over encoded feature registers. `n = 25` gives 96
/// CX-equivalent gates.
pub fn knn(n: usize) -> Circuit {
    assert!(n >= 3 && n % 2 == 1, "knn needs odd n ≥ 3");
    let reg = (n - 1) / 2;
    let mut c = Circuit::new(n);
    // Feature encoding.
    for i in 0..reg {
        c.ry(0.7 + 0.2 * i as f64, 1 + i);
        c.rz(0.3, 1 + i);
        c.ry(0.6 + 0.15 * i as f64, 1 + reg + i);
        c.rz(0.5, 1 + reg + i);
    }
    c.h(0);
    for i in 0..reg {
        c.cswap(0, 1 + i, 1 + reg + i);
    }
    c.h(0);
    c
}

/// `TwoLocal` variational ansatz with full entanglement (paper Fig. 8a):
/// `reps` repetitions of an RY rotation layer followed by CX between every
/// qubit pair.
pub fn two_local_full(n: usize, reps: usize, seed: u64) -> Circuit {
    let mut rng = Rng::new(seed);
    let mut c = Circuit::new(n);
    for _rep in 0..reps {
        for q in 0..n {
            c.ry(rng.uniform_range(0.0, std::f64::consts::TAU), q);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                c.cx(i, j);
            }
        }
    }
    for q in 0..n {
        c.ry(rng.uniform_range(0.0, std::f64::consts::TAU), q);
    }
    c
}

/// `TwoLocal` with linear entanglement.
pub fn two_local_linear(n: usize, reps: usize, seed: u64) -> Circuit {
    let mut rng = Rng::new(seed);
    let mut c = Circuit::new(n);
    for _rep in 0..reps {
        for q in 0..n {
            c.ry(rng.uniform_range(0.0, std::f64::consts::TAU), q);
        }
        for i in 0..n.saturating_sub(1) {
            c.cx(i, i + 1);
        }
    }
    for q in 0..n {
        c.ry(rng.uniform_range(0.0, std::f64::consts::TAU), q);
    }
    c
}

/// Quantum-volume-style circuit: `depth` layers of Haar-random SU(4) blocks
/// on a random qubit pairing per layer.
pub fn quantum_volume(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = Rng::new(seed);
    let mut c = Circuit::new(n);
    for _layer in 0..depth {
        let mut qs: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut qs);
        for pair in qs.chunks(2) {
            if pair.len() == 2 {
                let u = mirage_gates::haar_2q(&mut rng);
                c.push(Gate::Unitary2(u), &[pair[0], pair[1]]);
            }
        }
    }
    c
}

/// The paper's benchmark suite (Table III): `(name, circuit)` pairs.
pub fn paper_suite() -> Vec<(&'static str, Circuit)> {
    vec![
        ("wstate_n27", wstate(27)),
        ("qftentangled_n16", qft_entangled(16)),
        ("qpeexact_n16", qpe_exact(16)),
        ("ae_n16", amplitude_estimation(16)),
        ("qft_n18", qft(18, false)),
        ("bv_n30", bv(30, 18)),
        ("multiplier_n15", multiplier(3)),
        ("bigadder_n18", cuccaro_adder(8)),
        ("qec9xz_n17", qec9xz()),
        ("seca_n11", seca()),
        ("qram_n20", qram()),
        ("sat_n11", sat()),
        ("portfolioqaoa_n16", portfolio_qaoa(16, 3, 99)),
        ("knn_n25", knn(25)),
        ("swap_test_n25", swap_test(25)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run;

    #[test]
    fn ghz_amplitudes() {
        let s = run(&ghz(4));
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!((s.amps[0].abs() - r).abs() < 1e-10);
        assert!((s.amps[15].abs() - r).abs() < 1e-10);
    }

    #[test]
    fn wstate_is_uniform_single_excitation() {
        let n = 5;
        let s = run(&wstate(n));
        let expect = (1.0 / n as f64).sqrt();
        for q in 0..n {
            let idx = 1usize << q;
            assert!(
                (s.amps[idx].abs() - expect).abs() < 1e-9,
                "amplitude of |…1_{q}…⟩ = {}",
                s.amps[idx].abs()
            );
        }
        // No other basis state populated.
        let total: f64 = (0..1 << n)
            .filter(|i| (*i as usize).count_ones() == 1)
            .map(|i| s.amps[i as usize].norm_sqr())
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wstate_n27_counts() {
        let c = wstate(27);
        assert_eq!(c.n_qubits, 27);
        assert_eq!(c.two_qubit_gate_count(), 52, "26 cry + 26 cx");
    }

    #[test]
    fn bv_counts_and_correctness() {
        let c = bv(30, 18);
        assert_eq!(c.two_qubit_gate_count(), 18);
        // Functional check on a small instance: bv(5, 2) must output the
        // secret on the input register.
        let c = bv(5, 2);
        let s = run(&c);
        // Find the dominant basis state; input register = bits 0..4.
        let (idx, _) = s
            .amps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            .unwrap();
        let input_bits = idx & 0b1111;
        assert_eq!(input_bits.count_ones(), 2, "secret weight preserved");
    }

    #[test]
    fn qft_counts() {
        let c = qft(18, false);
        assert_eq!(c.two_qubit_gate_count(), 153); // n(n−1)/2 cp gates
        assert_eq!(cx_equivalent_count(&c), 306); // paper Table III
    }

    #[test]
    fn qft_entangled_counts() {
        let c = qft_entangled(16);
        // 15 cx + 120 cp + 8 swap = 143 raw; 15 + 240 + 24 = 279 CX-equiv.
        assert_eq!(c.two_qubit_gate_count(), 143);
        assert_eq!(cx_equivalent_count(&c), 279);
    }

    #[test]
    fn qpe_exact_counts() {
        let c = qpe_exact(16);
        // 15 cp (ladder) + inverse QFT(15): 105 cp + 7 swap.
        assert_eq!(cx_equivalent_count(&c), 261);
    }

    #[test]
    fn ae_counts() {
        let c = amplitude_estimation(16);
        // 15 cry + 105 cp + 7 swap = (15+105)·2 + 21 = 261 — MQT's ae is
        // 240; ours is the same structure within 10%.
        let count = cx_equivalent_count(&c);
        assert!(
            (200..=280).contains(&count),
            "ae CX-equivalent count = {count}"
        );
    }

    #[test]
    fn adder_counts_and_function() {
        let c = cuccaro_adder(8);
        assert_eq!(c.n_qubits, 18);
        let count = cx_equivalent_count(&c);
        assert!(
            (120..=140).contains(&count),
            "bigadder CX count = {count} (paper: 130)"
        );
        // Functional check at 2 bits: a=01, b=01 → b=10.
        let mut c = Circuit::new(6);
        // cin=0, a0=1, b0=2, a1=3, b1=4, cout=5. Set a=1, b=1.
        c.x(1).x(2);
        c.extend(&cuccaro_adder(2));
        let s = run(&c);
        let (idx, _) = s
            .amps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            .unwrap();
        // b register (bits 2 and 4) should read 2 = b1 set: bit4=1, bit2=0.
        assert_eq!(idx & (1 << 2), 0, "b0 clear");
        assert_ne!(idx & (1 << 4), 0, "b1 set");
        // a register unchanged (a0 = bit1 still set).
        assert_ne!(idx & (1 << 1), 0, "a preserved");
    }

    #[test]
    fn qec9xz_counts() {
        let c = qec9xz();
        assert_eq!(c.n_qubits, 17);
        assert_eq!(c.two_qubit_gate_count(), 32);
    }

    #[test]
    fn seca_counts() {
        let c = seca();
        assert_eq!(c.n_qubits, 11);
        let count = cx_equivalent_count(&c);
        assert!(
            (70..=100).contains(&count),
            "seca CX count = {count} (paper: 84)"
        );
    }

    #[test]
    fn qram_counts() {
        let c = qram();
        assert_eq!(c.n_qubits, 20);
        let count = cx_equivalent_count(&c);
        assert!(
            (80..=105).contains(&count),
            "qram CX count = {count} (paper: 92)"
        );
    }

    #[test]
    fn sat_counts() {
        let c = sat();
        assert_eq!(c.n_qubits, 11);
        let count = cx_equivalent_count(&c);
        assert!(
            (230..=300).contains(&count),
            "sat CX count = {count} (paper: 252)"
        );
    }

    #[test]
    fn portfolio_qaoa_counts() {
        let c = portfolio_qaoa(16, 3, 99);
        assert_eq!(c.two_qubit_gate_count(), 360); // 3 × C(16,2)
        assert_eq!(cx_equivalent_count(&c), 720);
    }

    #[test]
    fn knn_swap_test_counts() {
        assert_eq!(cx_equivalent_count(&knn(25)), 96);
        assert_eq!(cx_equivalent_count(&swap_test(25)), 96);
        assert_eq!(knn(25).n_qubits, 25);
    }

    #[test]
    fn multiplier_counts() {
        let c = multiplier(3);
        assert_eq!(c.n_qubits, 15, "paper's multiplier_n15");
        let count = cx_equivalent_count(&c);
        assert!(
            (190..=280).contains(&count),
            "multiplier CX count = {count} (paper: 246)"
        );
    }

    #[test]
    fn two_local_full_structure() {
        let c = two_local_full(4, 1, 7);
        assert_eq!(c.two_qubit_gate_count(), 6); // C(4,2)
        let edges = c.interaction_edges();
        assert_eq!(edges.len(), 6);
    }

    #[test]
    fn quantum_volume_structure() {
        let c = quantum_volume(8, 5, 3);
        assert_eq!(c.two_qubit_gate_count(), 20); // 4 blocks × 5 layers
    }

    #[test]
    fn paper_suite_inventory() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 15);
        for (name, c) in &suite {
            assert!(c.two_qubit_gate_count() > 0, "{name} has 2Q gates");
            assert!(c.n_qubits >= 11, "{name} qubit count");
        }
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(portfolio_qaoa(8, 2, 5), portfolio_qaoa(8, 2, 5));
        assert_eq!(quantum_volume(6, 3, 9), quantum_volume(6, 3, 9));
    }

    #[test]
    fn swap_test_on_equal_states_accepts() {
        // Swap test on identical registers: ancilla must measure 0 with
        // probability 1.
        let reg = 2;
        let n = 2 * reg + 1;
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 0..reg {
            // identical preparations
            c.ry(0.4, 1 + i);
            c.ry(0.4, 1 + reg + i);
        }
        for i in 0..reg {
            c.cswap(0, 1 + i, 1 + reg + i);
        }
        c.h(0);
        let s = run(&c);
        let p1: f64 = s
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        assert!(p1 < 1e-9, "P(ancilla = 1) = {p1}");
    }
}
