//! Plain-text circuit rendering, in the spirit of the paper's Fig. 8
//! circuit diagrams.
//!
//! ```text
//! q0: ─H─■─────x─
//! q1: ───X─■───x─
//! q2: ─────X─■───
//! q3: ───────X───
//! ```
//!
//! Controlled gates draw `■` on the control and a letter on the target;
//! symmetric gates draw matching symbols on both wires. The renderer packs
//! gates into time slots greedily (a gate goes into the earliest slot where
//! all of its wires are free), matching the depth metric.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Symbols drawn for one gate: `(on_first_wire, on_second_wire)`; 1Q gates
/// use only the first.
fn symbols(g: &Gate) -> (String, String) {
    match g {
        Gate::H => ("H".into(), String::new()),
        Gate::X => ("X".into(), String::new()),
        Gate::Y => ("Y".into(), String::new()),
        Gate::Z => ("Z".into(), String::new()),
        Gate::S => ("S".into(), String::new()),
        Gate::Sdg => ("S'".into(), String::new()),
        Gate::T => ("T".into(), String::new()),
        Gate::Tdg => ("T'".into(), String::new()),
        Gate::Rx(_) => ("Rx".into(), String::new()),
        Gate::Ry(_) => ("Ry".into(), String::new()),
        Gate::Rz(_) => ("Rz".into(), String::new()),
        Gate::Phase(_) => ("P".into(), String::new()),
        Gate::U3(..) | Gate::Unitary1(_) => ("U".into(), String::new()),
        Gate::Cx => ("■".into(), "X".into()),
        Gate::Cz => ("■".into(), "Z".into()),
        Gate::Cphase(_) => ("■".into(), "P".into()),
        Gate::Cry(_) => ("■".into(), "Ry".into()),
        Gate::Swap => ("x".into(), "x".into()),
        Gate::ISwap => ("i".into(), "i".into()),
        Gate::ISwapPow(_) => ("√i".into(), "√i".into()),
        Gate::Rxx(_) => ("XX".into(), "XX".into()),
        Gate::Ryy(_) => ("YY".into(), "YY".into()),
        Gate::Rzz(_) => ("ZZ".into(), "ZZ".into()),
        Gate::Unitary2(_) => ("U2".into(), "U2".into()),
    }
}

/// Render the circuit as multi-line ASCII art.
pub fn render(c: &Circuit) -> String {
    // Assign gates to time slots.
    let mut wire_free_at = vec![0usize; c.n_qubits];
    let mut slots: Vec<Vec<(usize, String)>> = Vec::new(); // slot → (wire, symbol)
    for instr in &c.instructions {
        let slot = instr
            .qubits
            .iter()
            .map(|&q| wire_free_at[q])
            .max()
            .unwrap_or(0);
        while slots.len() <= slot {
            slots.push(Vec::new());
        }
        let (s0, s1) = symbols(&instr.gate);
        slots[slot].push((instr.qubits[0], s0));
        if instr.qubits.len() == 2 {
            slots[slot].push((instr.qubits[1], s1));
        }
        for &q in &instr.qubits {
            wire_free_at[q] = slot + 1;
        }
    }

    // Column widths per slot.
    let widths: Vec<usize> = slots
        .iter()
        .map(|slot| {
            slot.iter()
                .map(|(_, s)| s.chars().count())
                .max()
                .unwrap_or(1)
        })
        .collect();

    let label_w = format!("q{}", c.n_qubits.saturating_sub(1)).len();
    let mut out = String::new();
    for q in 0..c.n_qubits {
        let mut line = format!("{:>label_w$}: ", format!("q{q}"));
        for (slot, cells) in slots.iter().enumerate() {
            line.push('─');
            let sym = cells
                .iter()
                .find(|(w, _)| *w == q)
                .map(|(_, s)| s.clone())
                .unwrap_or_default();
            let pad = widths[slot].saturating_sub(sym.chars().count());
            if sym.is_empty() {
                line.push_str(&"─".repeat(widths[slot]));
            } else {
                line.push_str(&sym);
                line.push_str(&"─".repeat(pad));
            }
        }
        line.push('─');
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_bell_pair() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let art = render(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('H'));
        assert!(lines[0].contains('■'));
        assert!(lines[1].contains('X'));
    }

    #[test]
    fn parallel_gates_share_a_slot() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let art = render(&c);
        // Both gates in slot 0: each line has exactly one non-wire symbol
        // and all lines are the same length.
        let lens: Vec<usize> = art.lines().map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{art}");
    }

    #[test]
    fn sequential_gates_take_separate_slots() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let art = render(&c);
        let first = art.lines().next().unwrap();
        assert_eq!(first.matches('■').count(), 2);
    }

    #[test]
    fn swap_draws_crosses() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let art = render(&c);
        assert_eq!(art.matches('x').count(), 2);
    }

    #[test]
    fn renders_empty_circuit() {
        let c = Circuit::new(3);
        let art = render(&c);
        assert_eq!(art.lines().count(), 3);
    }

    #[test]
    fn labels_align_for_wide_registers() {
        let mut c = Circuit::new(11);
        c.h(10);
        let art = render(&c);
        assert!(art.lines().next().unwrap().starts_with(" q0:"));
        assert!(art.lines().last().unwrap().starts_with("q10:"));
    }
}
