//! OpenQASM 2.0 interchange: export any circuit, import the practical
//! subset the benchmark suites use.
//!
//! Export maps every gate in the vocabulary onto OpenQASM 2.0 primitives:
//! named gates directly, `Cry` by its two-CX decomposition, `ISwap`-family
//! and `Rxx/Ryy/Rzz` through custom `gate` definitions emitted on demand,
//! and opaque `Unitary1`/`Unitary2` blocks analytically via ZYZ / KAK (the
//! canonical part becomes commuting `rxx·ryy·rzz` rotations), so round
//! trips preserve semantics up to global phase. Angles are printed with
//! Rust's shortest-round-trip float formatting, so a circuit built from
//! standard gates re-imports with *bit-identical* parameters — the
//! property the network serving layer leans on to make wire submissions
//! reproduce in-process results exactly.
//!
//! Import handles `qreg` (multiple registers are flattened in declaration
//! order), the standard gate set, `pi`-expressions with `+ - * /` and
//! parentheses, and ignores `creg`, `measure`, `barrier`, comments and
//! `include`.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Export a circuit as OpenQASM 2.0 source.
pub fn to_qasm(c: &Circuit) -> String {
    let mut needs_iswap = false;
    let mut needs_rxx = false;
    let mut needs_ryy = false;
    let mut needs_rzz = false;
    let mut body = String::new();

    for instr in &c.instructions {
        let q = |k: usize| format!("q[{}]", instr.qubits[k]);
        match &instr.gate {
            Gate::H => body.push_str(&format!("h {};\n", q(0))),
            Gate::X => body.push_str(&format!("x {};\n", q(0))),
            Gate::Y => body.push_str(&format!("y {};\n", q(0))),
            Gate::Z => body.push_str(&format!("z {};\n", q(0))),
            Gate::S => body.push_str(&format!("s {};\n", q(0))),
            Gate::Sdg => body.push_str(&format!("sdg {};\n", q(0))),
            Gate::T => body.push_str(&format!("t {};\n", q(0))),
            Gate::Tdg => body.push_str(&format!("tdg {};\n", q(0))),
            Gate::Rx(t) => body.push_str(&format!("rx({t}) {};\n", q(0))),
            Gate::Ry(t) => body.push_str(&format!("ry({t}) {};\n", q(0))),
            Gate::Rz(t) => body.push_str(&format!("rz({t}) {};\n", q(0))),
            Gate::Phase(t) => body.push_str(&format!("u1({t}) {};\n", q(0))),
            Gate::U3(t, p, l) => body.push_str(&format!("u3({t},{p},{l}) {};\n", q(0))),
            Gate::Unitary1(m) => {
                let (theta, phi, lam, _alpha) = mirage_gates::euler_zyz(m);
                body.push_str(&format!("u3({theta},{phi},{lam}) {};\n", q(0)));
            }
            Gate::Cx => body.push_str(&format!("cx {},{};\n", q(0), q(1))),
            Gate::Cz => body.push_str(&format!("cz {},{};\n", q(0), q(1))),
            Gate::Cphase(t) => body.push_str(&format!("cu1({t}) {},{};\n", q(0), q(1))),
            Gate::Cry(t) => {
                // Standard 2-CX decomposition of a controlled RY.
                body.push_str(&format!("ry({}) {};\n", t / 2.0, q(1)));
                body.push_str(&format!("cx {},{};\n", q(0), q(1)));
                body.push_str(&format!("ry({}) {};\n", -t / 2.0, q(1)));
                body.push_str(&format!("cx {},{};\n", q(0), q(1)));
            }
            Gate::Swap => body.push_str(&format!("swap {},{};\n", q(0), q(1))),
            Gate::ISwap => {
                needs_iswap = true;
                body.push_str(&format!("iswap {},{};\n", q(0), q(1)));
            }
            Gate::ISwapPow(a) => {
                needs_rxx = true;
                needs_ryy = true;
                // iSWAP^α = rxx(−απ/2) · ryy(−απ/2) (commuting factors).
                let theta = -a * std::f64::consts::FRAC_PI_2;
                body.push_str(&format!("rxx({theta}) {},{};\n", q(0), q(1)));
                body.push_str(&format!("ryy({theta}) {},{};\n", q(0), q(1)));
            }
            Gate::Rxx(t) => {
                needs_rxx = true;
                body.push_str(&format!("rxx({t}) {},{};\n", q(0), q(1)));
            }
            Gate::Ryy(t) => {
                needs_ryy = true;
                body.push_str(&format!("ryy({t}) {},{};\n", q(0), q(1)));
            }
            Gate::Rzz(t) => {
                needs_rzz = true;
                body.push_str(&format!("rzz({t}) {},{};\n", q(0), q(1)));
            }
            Gate::Unitary2(m) => {
                // KAK: U = e^{iφ}(K1l⊗K1r)·CAN(a,b,c)·(K2l⊗K2r), and
                // CAN(a,b,c) = rxx(−2a)·ryy(−2b)·rzz(−2c).
                let kak = mirage_weyl::kak::kak_decompose(m).expect("unitary blocks decompose");
                needs_rxx = true;
                needs_ryy = true;
                needs_rzz = true;
                let emit_1q = |body: &mut String, u: &mirage_math::Mat2, wire: &str| {
                    let (theta, phi, lam, _alpha) = mirage_gates::euler_zyz(u);
                    body.push_str(&format!("u3({theta},{phi},{lam}) {wire};\n"));
                };
                emit_1q(&mut body, &kak.k2l, &q(0));
                emit_1q(&mut body, &kak.k2r, &q(1));
                body.push_str(&format!("rxx({}) {},{};\n", -2.0 * kak.a, q(0), q(1)));
                body.push_str(&format!("ryy({}) {},{};\n", -2.0 * kak.b, q(0), q(1)));
                body.push_str(&format!("rzz({}) {},{};\n", -2.0 * kak.c, q(0), q(1)));
                emit_1q(&mut body, &kak.k1l, &q(0));
                emit_1q(&mut body, &kak.k1r, &q(1));
            }
        }
    }

    let mut header = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    if needs_iswap {
        header.push_str("gate iswap a,b { s a; s b; h a; cx a,b; cx b,a; h b; }\n");
    }
    if needs_rxx {
        header
            .push_str("gate rxx(theta) a,b { h a; h b; cx a,b; rz(theta) b; cx a,b; h a; h b; }\n");
    }
    if needs_ryy {
        header.push_str("gate ryy(theta) a,b { rx(pi/2) a; rx(pi/2) b; cx a,b; rz(theta) b; cx a,b; rx(-pi/2) a; rx(-pi/2) b; }\n");
    }
    if needs_rzz {
        header.push_str("gate rzz(theta) a,b { cx a,b; rz(theta) b; cx a,b; }\n");
    }
    header.push_str(&format!("qreg q[{}];\n", c.n_qubits));
    header.push_str(&body);
    header
}

/// Errors from [`from_qasm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QasmError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QASM parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for QasmError {}

/// Parse an OpenQASM 2.0 program (the supported subset — see module docs).
///
/// # Errors
///
/// Returns a [`QasmError`] with the offending line for unknown gates,
/// malformed arguments, or out-of-range qubit references.
pub fn from_qasm(src: &str) -> Result<Circuit, QasmError> {
    // Register table: name → (offset, size).
    let mut regs: Vec<(String, usize, usize)> = Vec::new();
    let mut total = 0usize;
    let mut instructions: Vec<(usize, String)> = Vec::new();

    // Strip `gate name(...) ... { body }` definition blocks up front (the
    // standard-library gates they define are built in); QASM 2.0 gate
    // bodies cannot nest braces, so a simple scan suffices.
    let mut stripped = String::with_capacity(src.len());
    let mut rest = src;
    while let Some(start) = rest.find("gate ") {
        // Only treat it as a definition when a '{' appears before the next ';'.
        let after = &rest[start..];
        let brace = after.find('{');
        let semi = after.find(';');
        match (brace, semi) {
            (Some(b), s) if s.map(|x| b < x).unwrap_or(true) => {
                let close = after[b..].find('}').map(|p| start + b + p + 1);
                stripped.push_str(&rest[..start]);
                match close {
                    Some(c) => rest = &rest[c..],
                    None => {
                        rest = "";
                    }
                }
            }
            _ => {
                stripped.push_str(&rest[..start + 5]);
                rest = &rest[start + 5..];
            }
        }
    }
    stripped.push_str(rest);
    let src: &str = &stripped;

    // Strip comments, split on ';'.
    for (line_no, raw_line) in src.lines().enumerate() {
        let line = match raw_line.find("//") {
            Some(p) => &raw_line[..p],
            None => raw_line,
        };
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            instructions.push((line_no + 1, stmt.to_string()));
        }
    }

    let mut circuit_body: Vec<(usize, String)> = Vec::new();
    for (line, stmt) in instructions {
        if stmt.starts_with("OPENQASM")
            || stmt.starts_with("include")
            || stmt.starts_with("creg")
            || stmt.starts_with("barrier")
            || stmt.starts_with("measure")
            || stmt.starts_with("gate ")
            || stmt == "}"
        {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("qreg") {
            let rest = rest.trim();
            let open = rest.find('[').ok_or_else(|| QasmError {
                line,
                message: "qreg missing size".into(),
            })?;
            let close = rest.find(']').ok_or_else(|| QasmError {
                line,
                message: "qreg missing ]".into(),
            })?;
            let name = rest[..open].trim().to_string();
            let size: usize = rest[open + 1..close]
                .trim()
                .parse()
                .map_err(|_| QasmError {
                    line,
                    message: "bad qreg size".into(),
                })?;
            regs.push((name, total, size));
            total += size;
            continue;
        }
        circuit_body.push((line, stmt));
    }

    let mut c = Circuit::new(total);
    for (line, stmt) in circuit_body {
        parse_gate(&mut c, &regs, line, &stmt)?;
    }
    Ok(c)
}

fn parse_gate(
    c: &mut Circuit,
    regs: &[(String, usize, usize)],
    line: usize,
    stmt: &str,
) -> Result<(), QasmError> {
    let err = |message: &str| QasmError {
        line,
        message: message.to_string(),
    };

    // Split "name(args) operands".
    let (head, operands) = match stmt.find(')') {
        Some(p) => (&stmt[..=p], stmt[p + 1..].trim()),
        None => match stmt.find(' ') {
            Some(p) => (&stmt[..p], stmt[p + 1..].trim()),
            None => return Err(err("malformed statement")),
        },
    };
    let (name, args) = match head.find('(') {
        Some(p) => {
            let name = head[..p].trim();
            let inner = head[p + 1..head.len() - 1].trim();
            let args: Result<Vec<f64>, QasmError> = inner
                .split(',')
                .map(|e| eval_expr(e).ok_or_else(|| err("bad parameter expression")))
                .collect();
            (name, args?)
        }
        None => (head.trim(), Vec::new()),
    };

    let qubits: Result<Vec<usize>, QasmError> = operands
        .split(',')
        .map(|op| resolve_qubit(regs, op.trim()).ok_or_else(|| err("unknown qubit operand")))
        .collect();
    let qubits = qubits?;

    let arg = |k: usize| -> Result<f64, QasmError> {
        args.get(k).copied().ok_or_else(|| err("missing parameter"))
    };

    match (name, qubits.len()) {
        ("h", 1) => c.push(Gate::H, &qubits),
        ("x", 1) => c.push(Gate::X, &qubits),
        ("y", 1) => c.push(Gate::Y, &qubits),
        ("z", 1) => c.push(Gate::Z, &qubits),
        ("s", 1) => c.push(Gate::S, &qubits),
        ("sdg", 1) => c.push(Gate::Sdg, &qubits),
        ("t", 1) => c.push(Gate::T, &qubits),
        ("tdg", 1) => c.push(Gate::Tdg, &qubits),
        ("id", 1) => return Ok(()),
        ("rx", 1) => c.push(Gate::Rx(arg(0)?), &qubits),
        ("ry", 1) => c.push(Gate::Ry(arg(0)?), &qubits),
        ("rz", 1) => c.push(Gate::Rz(arg(0)?), &qubits),
        ("p", 1) | ("u1", 1) => c.push(Gate::Phase(arg(0)?), &qubits),
        ("u2", 1) => c.push(
            Gate::U3(std::f64::consts::FRAC_PI_2, arg(0)?, arg(1)?),
            &qubits,
        ),
        ("u3", 1) | ("u", 1) => c.push(Gate::U3(arg(0)?, arg(1)?, arg(2)?), &qubits),
        ("cx", 2) => c.push(Gate::Cx, &qubits),
        ("cz", 2) => c.push(Gate::Cz, &qubits),
        ("cp", 2) | ("cu1", 2) => c.push(Gate::Cphase(arg(0)?), &qubits),
        ("cry", 2) => c.push(Gate::Cry(arg(0)?), &qubits),
        ("swap", 2) => c.push(Gate::Swap, &qubits),
        ("iswap", 2) => c.push(Gate::ISwap, &qubits),
        ("rxx", 2) => c.push(Gate::Rxx(arg(0)?), &qubits),
        ("ryy", 2) => c.push(Gate::Ryy(arg(0)?), &qubits),
        ("rzz", 2) => c.push(Gate::Rzz(arg(0)?), &qubits),
        ("ccx", 3) => c.ccx(qubits[0], qubits[1], qubits[2]),
        ("cswap", 3) => c.cswap(qubits[0], qubits[1], qubits[2]),
        (other, n) => return Err(err(&format!("unsupported gate '{other}' on {n} qubits"))),
    };
    Ok(())
}

fn resolve_qubit(regs: &[(String, usize, usize)], op: &str) -> Option<usize> {
    let open = op.find('[')?;
    let close = op.find(']')?;
    let name = op[..open].trim();
    let idx: usize = op[open + 1..close].trim().parse().ok()?;
    let (_, offset, size) = regs.iter().find(|(n, _, _)| n == name)?;
    if idx < *size {
        Some(offset + idx)
    } else {
        None
    }
}

/// Evaluate a parameter expression: numbers, `pi`, unary minus, `+ - * /`,
/// parentheses.
fn eval_expr(src: &str) -> Option<f64> {
    let tokens = tokenize(src)?;
    let mut pos = 0usize;
    let v = parse_sum(&tokens, &mut pos)?;
    if pos == tokens.len() {
        Some(v)
    } else {
        None
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(src: &str) -> Option<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let ch = bytes[i] as char;
        match ch {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            'p' | 'P' if src[i..].to_lowercase().starts_with("pi") => {
                out.push(Tok::Num(std::f64::consts::PI));
                i += 2;
            }
            'p' | 'P' => return None,
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] as char == '.'
                        || bytes[i] as char == 'e'
                        || bytes[i] as char == 'E'
                        || ((bytes[i] as char == '-' || bytes[i] as char == '+')
                            && i > start
                            && (bytes[i - 1] as char == 'e' || bytes[i - 1] as char == 'E')))
                {
                    i += 1;
                }
                out.push(Tok::Num(src[start..i].parse().ok()?));
            }
            _ => return None,
        }
    }
    Some(out)
}

fn parse_sum(tokens: &[Tok], pos: &mut usize) -> Option<f64> {
    let mut acc = parse_product(tokens, pos)?;
    while *pos < tokens.len() {
        match tokens[*pos] {
            Tok::Plus => {
                *pos += 1;
                acc += parse_product(tokens, pos)?;
            }
            Tok::Minus => {
                *pos += 1;
                acc -= parse_product(tokens, pos)?;
            }
            _ => break,
        }
    }
    Some(acc)
}

fn parse_product(tokens: &[Tok], pos: &mut usize) -> Option<f64> {
    let mut acc = parse_atom(tokens, pos)?;
    while *pos < tokens.len() {
        match tokens[*pos] {
            Tok::Star => {
                *pos += 1;
                acc *= parse_atom(tokens, pos)?;
            }
            Tok::Slash => {
                *pos += 1;
                acc /= parse_atom(tokens, pos)?;
            }
            _ => break,
        }
    }
    Some(acc)
}

fn parse_atom(tokens: &[Tok], pos: &mut usize) -> Option<f64> {
    match tokens.get(*pos)? {
        Tok::Num(v) => {
            *pos += 1;
            Some(*v)
        }
        Tok::Minus => {
            *pos += 1;
            Some(-parse_atom(tokens, pos)?)
        }
        Tok::Plus => {
            *pos += 1;
            parse_atom(tokens, pos)
        }
        Tok::LParen => {
            *pos += 1;
            let v = parse_sum(tokens, pos)?;
            if tokens.get(*pos) == Some(&Tok::RParen) {
                *pos += 1;
                Some(v)
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{ghz, qft};
    use crate::sim::equivalent_on_zero;

    #[test]
    fn export_contains_expected_lines() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(0.5, 1);
        let q = to_qasm(&c);
        assert!(q.contains("qreg q[2];"));
        assert!(q.contains("h q[0];"));
        assert!(q.contains("cx q[0],q[1];"));
        assert!(q.contains("rz(0.5"));
    }

    #[test]
    fn roundtrip_standard_gates() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .rz(0.7, 1)
            .cp(1.1, 1, 2)
            .swap(0, 2)
            .t(2)
            .ry(-0.4, 0);
        let parsed = from_qasm(&to_qasm(&c)).expect("parses");
        assert_eq!(parsed.n_qubits, 3);
        assert!(equivalent_on_zero(&c, &parsed, None));
    }

    #[test]
    fn roundtrip_qft() {
        let c = qft(5, true);
        let parsed = from_qasm(&to_qasm(&c)).expect("parses");
        assert!(equivalent_on_zero(&c, &parsed, None));
    }

    #[test]
    fn roundtrip_cry() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cry(0.8), &[0, 1]);
        c.h(0);
        let parsed = from_qasm(&to_qasm(&c)).expect("parses");
        assert!(equivalent_on_zero(&c, &parsed, None));
    }

    #[test]
    fn roundtrip_iswap_pow() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.push(Gate::ISwapPow(0.5), &[0, 1]);
        c.push(Gate::ISwapPow(0.5), &[0, 1]);
        let parsed = from_qasm(&to_qasm(&c)).expect("parses");
        assert!(equivalent_on_zero(&c, &parsed, None));
    }

    #[test]
    fn roundtrip_unitary_blocks() {
        let mut rng = mirage_math::Rng::new(0xA5);
        let mut c = Circuit::new(2);
        c.h(0);
        c.push(Gate::Unitary2(mirage_gates::haar_2q(&mut rng)), &[0, 1]);
        c.push(Gate::Unitary1(mirage_gates::haar_1q(&mut rng)), &[1]);
        let parsed = from_qasm(&to_qasm(&c)).expect("parses");
        assert!(equivalent_on_zero(&c, &parsed, None));
    }

    #[test]
    fn parse_expressions() {
        assert!((eval_expr("pi/2").unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((eval_expr("-pi/4").unwrap() + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((eval_expr("3*(1+1)/2").unwrap() - 3.0).abs() < 1e-12);
        assert!((eval_expr("1.5e-3").unwrap() - 0.0015).abs() < 1e-15);
        assert!(eval_expr("pi pi").is_none());
        assert!(eval_expr("(1").is_none());
    }

    #[test]
    fn parse_multiple_registers() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg a[2];
            qreg b[1];
            h a[0];
            cx a[1], b[0];
        "#;
        let c = from_qasm(src).expect("parses");
        assert_eq!(c.n_qubits, 3);
        assert_eq!(c.instructions[1].qubits, vec![1, 2]);
    }

    #[test]
    fn parse_ignores_measure_and_barriers() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[2];
            creg c[2];
            h q[0];
            barrier q[0], q[1];
            measure q[0] -> c[0];
        "#;
        let c = from_qasm(src).expect("parses");
        assert_eq!(c.instructions.len(), 1);
    }

    #[test]
    fn parse_ccx_expands() {
        let src = "qreg q[3];\nccx q[0],q[1],q[2];";
        let c = from_qasm(src).expect("parses");
        assert_eq!(c.two_qubit_gate_count(), 6);
    }

    #[test]
    fn error_reports_line() {
        let src = "qreg q[2];\nfrobnicate q[0];";
        let e = from_qasm(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn error_on_out_of_range_qubit() {
        let src = "qreg q[2];\nh q[5];";
        assert!(from_qasm(src).is_err());
    }

    #[test]
    fn ghz_roundtrip_via_strings() {
        let c = ghz(6);
        let text = to_qasm(&c);
        let parsed = from_qasm(&text).expect("parses");
        assert!(equivalent_on_zero(&c, &parsed, None));
        // Export of the parse is stable.
        assert_eq!(to_qasm(&parsed), text);
    }
}
