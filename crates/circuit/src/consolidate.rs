//! `ConsolidateBlocks`: merge runs of gates on the same qubit pair into
//! single two-qubit unitary blocks.
//!
//! MIRAGE operates on consolidated two-qubit blocks (paper §V): before
//! routing, every maximal run of gates confined to one qubit pair becomes
//! one `Unitary2` instruction whose canonical coordinates drive the cost
//! model.
//!
//! Following the paper's caching optimization (Fig. 13a), *exterior*
//! single-qubit gates — those before the first or after the last two-qubit
//! gate of a run — are **not** folded into the block: they cannot change the
//! block's canonical coordinates, and leaving them outside makes blocks from
//! structurally identical circuit fragments byte-identical, which turns the
//! coordinate cache's near-misses into hits.

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;
use mirage_math::{Mat2, Mat4};

/// An in-progress block on an (ordered) qubit pair.
struct Block {
    hi: usize,
    lo: usize,
    /// Accumulated interior unitary.
    matrix: Mat4,
    /// Number of 2Q gates folded in.
    twoq_count: usize,
    /// The original instruction, when the block holds exactly one 2Q gate
    /// and no interior 1Q gates (so it can be re-emitted verbatim).
    sole: Option<Instruction>,
    /// 1Q gates seen after the last 2Q gate (pending: interior only if
    /// another 2Q gate of this pair follows, exterior otherwise).
    pending_hi: Vec<Mat2>,
    pending_lo: Vec<Mat2>,
}

impl Block {
    fn new(hi: usize, lo: usize) -> Block {
        Block {
            hi,
            lo,
            matrix: Mat4::identity(),
            twoq_count: 0,
            sole: None,
            pending_hi: Vec::new(),
            pending_lo: Vec::new(),
        }
    }

    fn absorb_pending(&mut self) {
        let mut interior_changed = false;
        for m in self.pending_hi.drain(..) {
            self.matrix = Mat4::kron(&m, &Mat2::identity()).mul(&self.matrix);
            interior_changed = true;
        }
        for m in self.pending_lo.drain(..) {
            self.matrix = Mat4::kron(&Mat2::identity(), &m).mul(&self.matrix);
            interior_changed = true;
        }
        if interior_changed {
            self.sole = None;
        }
    }

    fn add_2q(&mut self, instr: &Instruction) {
        self.absorb_pending();
        let mut m = instr.gate.matrix2();
        // Align operand order with the block's (hi, lo).
        if instr.qubits[0] == self.lo {
            m = m.reverse_qubits();
        }
        self.matrix = m.mul(&self.matrix);
        self.twoq_count += 1;
        if self.twoq_count == 1 {
            self.sole = Some(instr.clone());
        } else {
            self.sole = None;
        }
    }

    /// Emit the block followed by its trailing exterior 1Q gates.
    fn flush(self, out: &mut Vec<Instruction>) {
        if self.twoq_count > 0 {
            match self.sole {
                Some(orig) => out.push(orig),
                None => out.push(Instruction {
                    gate: Gate::Unitary2(self.matrix),
                    qubits: vec![self.hi, self.lo],
                }),
            }
        }
        for m in self.pending_hi {
            out.push(Instruction {
                gate: Gate::Unitary1(m),
                qubits: vec![self.hi],
            });
        }
        for m in self.pending_lo {
            out.push(Instruction {
                gate: Gate::Unitary1(m),
                qubits: vec![self.lo],
            });
        }
    }
}

/// Consolidate maximal same-pair runs into `Unitary2` blocks.
///
/// Exterior single-qubit gates stay as separate instructions (see module
/// docs). Blocks holding exactly one two-qubit gate and no interior 1Q
/// gates are re-emitted verbatim.
pub fn consolidate(c: &Circuit) -> Circuit {
    let mut out: Vec<Instruction> = Vec::with_capacity(c.instructions.len());
    // Active block per qubit (both members of a pair point at the same
    // slot; slots are indices into `blocks`).
    let mut active: Vec<Option<usize>> = vec![None; c.n_qubits];
    let mut blocks: Vec<Option<Block>> = Vec::new();

    let close = |q: usize,
                 active: &mut Vec<Option<usize>>,
                 blocks: &mut Vec<Option<Block>>,
                 out: &mut Vec<Instruction>| {
        if let Some(slot) = active[q] {
            if let Some(block) = blocks[slot].take() {
                active[block.hi] = None;
                active[block.lo] = None;
                block.flush(out);
            }
        }
    };

    for instr in &c.instructions {
        match instr.qubits.len() {
            1 => {
                let q = instr.qubits[0];
                if let Some(slot) = active[q] {
                    let block = blocks[slot].as_mut().expect("active slot live");
                    let m = instr.gate.matrix1();
                    if q == block.hi {
                        block.pending_hi.push(m);
                    } else {
                        block.pending_lo.push(m);
                    }
                } else {
                    out.push(instr.clone());
                }
            }
            2 => {
                let (a, b) = (instr.qubits[0], instr.qubits[1]);
                let same_pair = match (active[a], active[b]) {
                    (Some(sa), Some(sb)) => sa == sb,
                    _ => false,
                };
                if same_pair {
                    let slot = active[a].expect("checked above");
                    blocks[slot].as_mut().expect("live").add_2q(instr);
                } else {
                    close(a, &mut active, &mut blocks, &mut out);
                    close(b, &mut active, &mut blocks, &mut out);
                    let mut block = Block::new(a, b);
                    block.add_2q(instr);
                    let slot = blocks.len();
                    blocks.push(Some(block));
                    active[a] = Some(slot);
                    active[b] = Some(slot);
                }
            }
            _ => unreachable!("gates are 1- or 2-qubit"),
        }
    }
    // Flush leftovers in creation order.
    for slot in 0..blocks.len() {
        if let Some(block) = blocks[slot].take() {
            active[block.hi] = None;
            active[block.lo] = None;
            block.flush(&mut out);
        }
    }

    Circuit {
        n_qubits: c.n_qubits,
        instructions: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::equivalent_on_zero;

    #[test]
    fn merges_same_pair_run() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.3, 1).cx(0, 1);
        let cc = consolidate(&c);
        assert_eq!(cc.instructions.len(), 1);
        assert!(matches!(cc.instructions[0].gate, Gate::Unitary2(_)));
        assert!(equivalent_on_zero(&c, &cc, None));
    }

    #[test]
    fn exterior_1q_stays_outside() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(0.3, 1).cx(0, 1).h(1);
        let cc = consolidate(&c);
        // h(0) before, block, h(1) after.
        assert_eq!(cc.instructions.len(), 3);
        assert_eq!(cc.instructions[0].gate, Gate::H);
        assert!(matches!(cc.instructions[1].gate, Gate::Unitary2(_)));
        assert!(matches!(cc.instructions[2].gate, Gate::Unitary1(_)));
        assert!(equivalent_on_zero(&c, &cc, None));
    }

    #[test]
    fn single_gate_block_verbatim() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let cc = consolidate(&c);
        assert_eq!(cc.instructions.len(), 2);
        assert_eq!(cc.instructions[0].gate, Gate::Cx);
        assert_eq!(cc.instructions[1].gate, Gate::Cx);
    }

    #[test]
    fn interleaved_pairs_break_blocks() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(0, 1);
        let cc = consolidate(&c);
        // No consolidation possible: the middle gate touches qubit 1.
        assert_eq!(cc.instructions.len(), 3);
        assert!(equivalent_on_zero(&c, &cc, None));
    }

    #[test]
    fn reversed_operand_order_merges() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0).cx(0, 1);
        let cc = consolidate(&c);
        assert_eq!(cc.instructions.len(), 1);
        assert!(equivalent_on_zero(&c, &cc, None));
    }

    #[test]
    fn identical_fragments_identical_blocks() {
        // Two copies of the same fragment with different exterior 1Q gates
        // must produce byte-identical block matrices (the Fig. 13a cache
        // property).
        let mut c = Circuit::new(4);
        c.rz(0.9, 0); // exterior
        c.cx(0, 1).rz(0.3, 1).cx(0, 1);
        c.h(2); // exterior
        c.cx(2, 3).rz(0.3, 3).cx(2, 3);
        let cc = consolidate(&c);
        let blocks: Vec<&Mat4> = cc
            .instructions
            .iter()
            .filter_map(|i| match &i.gate {
                Gate::Unitary2(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(blocks.len(), 2);
        assert!(
            blocks[0].approx_eq(blocks[1], 0.0),
            "blocks must be identical"
        );
    }

    #[test]
    fn larger_circuit_equivalence() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cx(0, 1)
            .rz(0.2, 0)
            .ry(0.4, 1)
            .cx(0, 1)
            .cx(1, 2)
            .cx(2, 3)
            .rx(0.1, 3)
            .cx(2, 3)
            .h(3);
        let cc = consolidate(&c);
        assert!(equivalent_on_zero(&c, &cc, None));
        assert!(cc.instructions.len() < c.instructions.len());
    }

    #[test]
    fn pending_1q_flushed_after_block() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.5, 0).rz(0.7, 1);
        let cc = consolidate(&c);
        // Single CX block (verbatim) + two exterior 1Q gates.
        assert_eq!(cc.instructions.len(), 3);
        assert_eq!(cc.instructions[0].gate, Gate::Cx);
        assert!(equivalent_on_zero(&c, &cc, None));
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(2);
        assert_eq!(consolidate(&c).instructions.len(), 0);
    }

    #[test]
    fn one_qubit_only_circuit() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let cc = consolidate(&c);
        assert_eq!(cc.instructions.len(), 2);
    }
}
