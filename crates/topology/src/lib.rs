//! Hardware coupling topologies and the VF2 layout check.
//!
//! The paper evaluates MIRAGE on the two production topologies —
//! IBM-style **heavy-hex** (57 qubits at distance 5) and a **6×6 square
//! lattice** — plus small lines and all-to-all graphs for the
//! decomposition studies.
//!
//! * [`CouplingMap`] — an undirected connectivity graph with all-pairs
//!   shortest-path distances (BFS).
//! * [`vf2::find_embedding`] — subgraph-monomorphism search used as the
//!   `VF2Layout` pre-pass: when a circuit's interaction graph embeds
//!   directly into the hardware graph, no routing is needed and the
//!   transpilers are bypassed (paper §V).
//!
//! ---
//! **Owns:** [`CouplingMap`] (line/ring/grid/heavy-hex/all-to-all),
//! [`vf2::find_embedding`].
//! **Paper:** §V topologies — the 57-qubit heavy-hex and 6×6 lattice of
//! Fig. 12 — and the VF2 layout pre-pass.

pub mod vf2;

/// An undirected hardware connectivity graph.
///
/// ```
/// use mirage_topology::CouplingMap;
/// let grid = CouplingMap::grid(6, 6);
/// assert_eq!(grid.n_qubits(), 36);
/// assert_eq!(grid.distance(0, 35), 10); // Manhattan corner-to-corner
/// ```
#[derive(Debug, Clone)]
pub struct CouplingMap {
    n: usize,
    edges: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
    dist: Vec<Vec<u32>>,
    name: String,
}

impl CouplingMap {
    /// Build from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn from_edges(n: usize, raw_edges: &[(usize, usize)], name: &str) -> CouplingMap {
        let mut adjacency = vec![Vec::new(); n];
        let mut edges = Vec::with_capacity(raw_edges.len());
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in raw_edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for n={n}");
            assert_ne!(a, b, "self-loop at {a}");
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                edges.push(key);
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        for adj in adjacency.iter_mut() {
            adj.sort_unstable();
        }
        let dist = all_pairs_bfs(n, &adjacency);
        CouplingMap {
            n,
            edges,
            adjacency,
            dist,
            name: name.to_owned(),
        }
    }

    /// A 1D line of `n` qubits.
    pub fn line(n: usize) -> CouplingMap {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        CouplingMap::from_edges(n, &edges, &format!("line-{n}"))
    }

    /// A ring of `n` qubits.
    pub fn ring(n: usize) -> CouplingMap {
        let mut edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        if n > 2 {
            edges.push((n - 1, 0));
        }
        CouplingMap::from_edges(n, &edges, &format!("ring-{n}"))
    }

    /// A `rows × cols` square lattice (the paper's 6×6 topology).
    pub fn grid(rows: usize, cols: usize) -> CouplingMap {
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        CouplingMap::from_edges(rows * cols, &edges, &format!("grid-{rows}x{cols}"))
    }

    /// All-to-all connectivity on `n` qubits.
    pub fn all_to_all(n: usize) -> CouplingMap {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        CouplingMap::from_edges(n, &edges, &format!("a2a-{n}"))
    }

    /// IBM-style heavy-hex lattice at code distance `d` (odd):
    /// `n = (5d² − 2d − 1)/2` qubits — `d = 5` gives the paper's 57-qubit
    /// device.
    ///
    /// The construction follows the IBM layout: `d` rows of `d`-qubit data
    /// chains joined by bridge qubits; each unit row has `2d − 1` "row"
    /// qubits connected in a line, and `(d+1)/2` bridge qubits hang between
    /// consecutive rows, alternating column parity.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even or `d < 3`.
    pub fn heavy_hex(d: usize) -> CouplingMap {
        assert!(d >= 3 && d % 2 == 1, "heavy-hex needs odd d ≥ 3");
        let row_len = 2 * d - 1;
        let bridges_per_gap = d.div_ceil(2);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut next = 0usize;

        // Row qubits, row by row, with bridge qubits between rows.
        let mut row_start = Vec::new();
        for _r in 0..d {
            row_start.push(next);
            next += row_len;
        }
        // Lines within each row.
        for &start in &row_start {
            for i in 0..row_len - 1 {
                edges.push((start + i, start + i + 1));
            }
        }
        // Bridges between consecutive rows: row r connects to row r+1
        // through bridge qubits at columns 0, 4, 8, … for even gaps and
        // 2, 6, 10, … for odd gaps (alternating, the heavy-hex signature).
        for gap in 0..d - 1 {
            let offset = if gap % 2 == 0 { 0 } else { 2 };
            let mut used_cols = std::collections::HashSet::new();
            for b in 0..bridges_per_gap {
                // Clamp the last bridge of an offset gap to the row end so
                // every gap carries (d+1)/2 bridges (keeping the lattice at
                // its (5d²−2d−1)/2 qubit count) while the degree stays ≤ 3.
                let col = (offset + 4 * b).min(row_len - 1);
                if !used_cols.insert(col) {
                    continue;
                }
                let bridge = next;
                next += 1;
                edges.push((row_start[gap] + col, bridge));
                edges.push((bridge, row_start[gap + 1] + col));
            }
        }
        let expected = (5 * d * d - 2 * d - 1) / 2;
        debug_assert_eq!(next, expected, "heavy-hex qubit count mismatch");
        CouplingMap::from_edges(next, &edges, &format!("heavy-hex-{d}"))
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The normalized undirected edge list (`lo < hi`).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of a qubit (sorted).
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// True when `a` and `b` are directly coupled.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Shortest-path distance in hops (`u32::MAX` when disconnected).
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.dist[a][b]
    }

    /// The topology's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when every qubit can reach every other.
    pub fn is_connected(&self) -> bool {
        self.n == 0 || self.dist[0].iter().all(|&d| d != u32::MAX)
    }

    /// Graph degree statistics `(min, max)`.
    pub fn degree_range(&self) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0;
        for adj in &self.adjacency {
            lo = lo.min(adj.len());
            hi = hi.max(adj.len());
        }
        if self.n == 0 {
            (0, 0)
        } else {
            (lo, hi)
        }
    }
}

fn all_pairs_bfs(n: usize, adjacency: &[Vec<usize>]) -> Vec<Vec<u32>> {
    let mut dist = vec![vec![u32::MAX; n]; n];
    let mut queue = std::collections::VecDeque::new();
    for (s, row) in dist.iter_mut().enumerate() {
        row[s] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in &adjacency[u] {
                if row[v] == u32::MAX {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        let m = CouplingMap::line(5);
        assert_eq!(m.n_qubits(), 5);
        assert_eq!(m.edges().len(), 4);
        assert_eq!(m.distance(0, 4), 4);
        assert!(m.are_adjacent(1, 2));
        assert!(!m.are_adjacent(0, 2));
    }

    #[test]
    fn ring_wraps() {
        let m = CouplingMap::ring(6);
        assert_eq!(m.distance(0, 5), 1);
        assert_eq!(m.distance(0, 3), 3);
    }

    #[test]
    fn grid_structure() {
        let m = CouplingMap::grid(6, 6);
        assert_eq!(m.n_qubits(), 36);
        assert_eq!(m.edges().len(), 60); // 2·6·5
        assert_eq!(m.distance(0, 35), 10);
        let (lo, hi) = m.degree_range();
        assert_eq!((lo, hi), (2, 4));
        assert!(m.is_connected());
    }

    #[test]
    fn all_to_all_distance_one() {
        let m = CouplingMap::all_to_all(5);
        assert_eq!(m.edges().len(), 10);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert_eq!(m.distance(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn heavy_hex_d5_is_57_qubits() {
        let m = CouplingMap::heavy_hex(5);
        assert_eq!(m.n_qubits(), 57, "paper's 57Q heavy-hex");
        assert!(m.is_connected());
        // Heavy-hex degree is at most 3 — that is the whole point of the
        // lattice (crosstalk reduction).
        let (lo, hi) = m.degree_range();
        assert!(lo >= 1);
        assert!(hi <= 3, "heavy-hex max degree = {hi}");
    }

    #[test]
    fn heavy_hex_d3() {
        let m = CouplingMap::heavy_hex(3);
        assert_eq!(m.n_qubits(), (5 * 9 - 6 - 1) / 2); // 19
        assert!(m.is_connected());
        assert!(m.degree_range().1 <= 3);
    }

    #[test]
    #[should_panic(expected = "odd d")]
    fn heavy_hex_even_panics() {
        let _ = CouplingMap::heavy_hex(4);
    }

    #[test]
    fn from_edges_dedups() {
        let m = CouplingMap::from_edges(3, &[(0, 1), (1, 0), (1, 2)], "t");
        assert_eq!(m.edges().len(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = CouplingMap::from_edges(3, &[(1, 1)], "t");
    }

    #[test]
    fn disconnected_detected() {
        let m = CouplingMap::from_edges(4, &[(0, 1), (2, 3)], "t");
        assert!(!m.is_connected());
        assert_eq!(m.distance(0, 2), u32::MAX);
    }

    #[test]
    fn grid_adjacency_no_wraparound() {
        let m = CouplingMap::grid(3, 3);
        // Qubit 2 (row 0, col 2) must not neighbor qubit 3 (row 1, col 0).
        assert!(!m.are_adjacent(2, 3));
        assert!(m.are_adjacent(2, 5));
    }
}
