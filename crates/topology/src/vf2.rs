//! VF2-style subgraph monomorphism: embed a circuit's interaction graph
//! into the hardware coupling graph.
//!
//! Qiskit runs `VF2Layout` before routing; when an embedding exists, the
//! circuit needs zero SWAPs and neither SABRE nor MIRAGE is invoked (paper
//! §V: "we check if an implementation with no SWAP gates can be found using
//! VF2Layout"). The search is exact with degree-based pruning and a node
//! budget so pathological instances fail fast rather than hang.

use crate::CouplingMap;

/// An interaction graph: `n` logical qubits and the pairs that interact.
#[derive(Debug, Clone)]
pub struct InteractionGraph {
    /// Number of logical qubits.
    pub n: usize,
    /// Undirected edges (normalized `lo < hi`, deduplicated).
    pub edges: Vec<(usize, usize)>,
}

impl InteractionGraph {
    /// Build from an edge iterator (normalizes and dedups).
    pub fn new<I: IntoIterator<Item = (usize, usize)>>(n: usize, edges: I) -> InteractionGraph {
        let mut set = std::collections::BTreeSet::new();
        for (a, b) in edges {
            assert!(a < n && b < n, "edge out of range");
            if a != b {
                set.insert((a.min(b), a.max(b)));
            }
        }
        InteractionGraph {
            n,
            edges: set.into_iter().collect(),
        }
    }

    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }
}

/// Find an injective map `logical → physical` such that every interaction
/// edge lands on a coupling edge. Returns `None` when no embedding exists
/// or the node budget is exhausted (treated as "not found").
///
/// `budget` caps the number of search-tree nodes (e.g. `1_000_000`).
pub fn find_embedding(g: &InteractionGraph, hw: &CouplingMap, budget: usize) -> Option<Vec<usize>> {
    find_embeddings(g, hw, budget, 1).into_iter().next()
}

/// Enumerate up to `max_results` distinct embeddings in search order (the
/// first entry, when any exists, is exactly [`find_embedding`]'s answer).
///
/// Callers that post-select embeddings — e.g. the `Vf2Embed` placement
/// strategy breaking ties by estimated success on a calibrated device —
/// get a candidate pool instead of whichever solution the search stumbles
/// on first. One `budget` covers the whole enumeration, so a pathological
/// instance still fails fast.
pub fn find_embeddings(
    g: &InteractionGraph,
    hw: &CouplingMap,
    budget: usize,
    max_results: usize,
) -> Vec<Vec<usize>> {
    if g.n > hw.n_qubits() || max_results == 0 {
        return Vec::new();
    }
    let g_adj = g.adjacency();
    // Order logical qubits by descending degree (most-constrained first),
    // preferring connectivity to already-placed qubits.
    let mut order: Vec<usize> = (0..g.n).collect();
    order.sort_by_key(|&q| std::cmp::Reverse(g_adj[q].len()));

    // Refine: BFS-like ordering so each placed qubit (after the first)
    // neighbors an earlier one when possible.
    let mut refined: Vec<usize> = Vec::with_capacity(g.n);
    let mut placed = vec![false; g.n];
    while refined.len() < g.n {
        let next = order
            .iter()
            .copied()
            .filter(|&q| !placed[q])
            .max_by_key(|&q| {
                let attached = g_adj[q].iter().filter(|&&x| placed[x]).count();
                (attached, g_adj[q].len())
            })
            .expect("unplaced qubit exists");
        placed[next] = true;
        refined.push(next);
    }

    let mut mapping: Vec<Option<usize>> = vec![None; g.n];
    let mut used = vec![false; hw.n_qubits()];
    let mut nodes = 0usize;
    let mut found: Vec<Vec<usize>> = Vec::new();
    backtrack(
        &refined,
        0,
        &g_adj,
        hw,
        &mut mapping,
        &mut used,
        &mut nodes,
        budget,
        max_results,
        &mut found,
    );
    found
}

/// Returns `true` when the search should stop (enough results, or budget
/// spent); solutions accumulate into `found`.
#[allow(clippy::too_many_arguments)]
fn backtrack(
    order: &[usize],
    depth: usize,
    g_adj: &[Vec<usize>],
    hw: &CouplingMap,
    mapping: &mut Vec<Option<usize>>,
    used: &mut Vec<bool>,
    nodes: &mut usize,
    budget: usize,
    max_results: usize,
    found: &mut Vec<Vec<usize>>,
) -> bool {
    if depth == order.len() {
        found.push(mapping.iter().map(|m| m.expect("complete")).collect());
        return found.len() >= max_results;
    }
    *nodes += 1;
    if *nodes > budget {
        return true;
    }
    let logical = order[depth];
    let deg = g_adj[logical].len();

    // Candidate physical qubits: neighbors of an already-mapped neighbor
    // when one exists (connectivity pruning), otherwise all free qubits.
    let anchored: Vec<usize> = g_adj[logical]
        .iter()
        .filter_map(|&nb| mapping[nb])
        .collect();
    let candidates: Vec<usize> = if let Some(&first) = anchored.first() {
        hw.neighbors(first).to_vec()
    } else {
        (0..hw.n_qubits()).collect()
    };

    for phys in candidates {
        if used[phys] || hw.neighbors(phys).len() < deg {
            continue;
        }
        // All mapped neighbors must be adjacent to phys.
        if !anchored.iter().all(|&a| hw.are_adjacent(a, phys)) {
            continue;
        }
        mapping[logical] = Some(phys);
        used[phys] = true;
        let stop = backtrack(
            order,
            depth + 1,
            g_adj,
            hw,
            mapping,
            used,
            nodes,
            budget,
            max_results,
            found,
        );
        mapping[logical] = None;
        used[phys] = false;
        if stop {
            return true;
        }
    }
    false
}

/// Verify that `mapping` embeds `g` into `hw` (used by tests and as a
/// post-condition check in the pipeline).
pub fn is_valid_embedding(g: &InteractionGraph, hw: &CouplingMap, mapping: &[usize]) -> bool {
    if mapping.len() != g.n {
        return false;
    }
    let mut seen = vec![false; hw.n_qubits()];
    for &p in mapping {
        if p >= hw.n_qubits() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    g.edges
        .iter()
        .all(|&(a, b)| hw.are_adjacent(mapping[a], mapping[b]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_into_grid() {
        let g = InteractionGraph::new(5, (0..4).map(|i| (i, i + 1)));
        let hw = CouplingMap::grid(3, 3);
        let m = find_embedding(&g, &hw, 100_000).expect("line fits in grid");
        assert!(is_valid_embedding(&g, &hw, &m));
    }

    #[test]
    fn star_needs_high_degree() {
        // A 5-star needs a degree-4 hub: fits a grid center, not a line.
        let g = InteractionGraph::new(5, (1..5).map(|i| (0, i)));
        let grid = CouplingMap::grid(3, 3);
        let m = find_embedding(&g, &grid, 100_000).expect("star fits grid center");
        assert!(is_valid_embedding(&g, &grid, &m));
        assert_eq!(m[0], 4, "hub must be the center qubit");
        let line = CouplingMap::line(6);
        assert!(find_embedding(&g, &line, 100_000).is_none());
    }

    #[test]
    fn triangle_rejected_by_bipartite_hosts() {
        let g = InteractionGraph::new(3, [(0, 1), (1, 2), (0, 2)]);
        let grid = CouplingMap::grid(3, 3); // bipartite: no triangles
        assert!(find_embedding(&g, &grid, 100_000).is_none());
        let a2a = CouplingMap::all_to_all(3);
        assert!(find_embedding(&g, &a2a, 100_000).is_some());
    }

    #[test]
    fn too_many_qubits_rejected() {
        let g = InteractionGraph::new(10, (0..9).map(|i| (i, i + 1)));
        let hw = CouplingMap::line(5);
        assert!(find_embedding(&g, &hw, 100_000).is_none());
    }

    #[test]
    fn disconnected_interaction_graph() {
        let g = InteractionGraph::new(4, [(0, 1), (2, 3)]);
        let hw = CouplingMap::line(4);
        let m = find_embedding(&g, &hw, 100_000).expect("two pairs fit a line");
        assert!(is_valid_embedding(&g, &hw, &m));
    }

    #[test]
    fn embedding_into_heavy_hex() {
        let g = InteractionGraph::new(8, (0..7).map(|i| (i, i + 1)));
        let hw = CouplingMap::heavy_hex(5);
        let m = find_embedding(&g, &hw, 1_000_000).expect("line fits heavy-hex");
        assert!(is_valid_embedding(&g, &hw, &m));
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // A hard instance with a tiny budget: K4 into a graph without K4.
        let g = InteractionGraph::new(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let hw = CouplingMap::grid(5, 5);
        assert!(find_embedding(&g, &hw, 10).is_none());
    }

    #[test]
    fn validator_rejects_bad_maps() {
        let g = InteractionGraph::new(2, [(0, 1)]);
        let hw = CouplingMap::line(3);
        assert!(!is_valid_embedding(&g, &hw, &[0, 2])); // not adjacent
        assert!(!is_valid_embedding(&g, &hw, &[1, 1])); // not injective
        assert!(is_valid_embedding(&g, &hw, &[1, 2]));
    }

    #[test]
    fn enumeration_yields_distinct_valid_embeddings() {
        // One interacting pair on a 4-line: 2 orientations × 3 edges.
        let g = InteractionGraph::new(2, [(0, 1)]);
        let hw = CouplingMap::line(4);
        let all = find_embeddings(&g, &hw, 100_000, 16);
        assert_eq!(all.len(), 6);
        for m in &all {
            assert!(is_valid_embedding(&g, &hw, m));
        }
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "embeddings must be distinct");
        // The first enumerated solution is find_embedding's answer.
        assert_eq!(find_embedding(&g, &hw, 100_000).unwrap(), all[0]);
        // max_results truncates, zero yields nothing.
        assert_eq!(find_embeddings(&g, &hw, 100_000, 2).len(), 2);
        assert!(find_embeddings(&g, &hw, 100_000, 0).is_empty());
    }

    #[test]
    fn interaction_graph_normalizes() {
        let g = InteractionGraph::new(3, [(2, 0), (0, 2), (1, 2)]);
        assert_eq!(g.edges, vec![(0, 2), (1, 2)]);
    }
}
