//! Placement strategies: seed the layout trials of a noisy grid device
//! with each `LayoutStrategy` — the paper's uniform-random seeding,
//! degree matching, calibration-aware region seeding, and the balanced
//! mix — and compare the predicted success of the routed results.
//!
//! Run with: `cargo run --release --example placement_strategies`

use mirage::circuit::consolidate::consolidate;
use mirage::circuit::generators::qft;
use mirage::core::placement::BALANCED_STRATEGY_MIX;
use mirage::core::trials::{Metric, TrialEngine, TrialOptions};
use mirage::core::{Calibration, StrategyKind, Target};
use mirage::math::Rng;
use mirage::topology::CouplingMap;

fn main() {
    // A 4x4 grid where a quarter of the couplers are 10x slower and
    // noisier — the skew model of the calibration-sweep experiment.
    let topo = CouplingMap::grid(4, 4);
    let calibration = Calibration::skewed(&topo, &mut Rng::new(0xD1CE), 5e-3, 0.25, 10.0)
        .expect("base error and factor in range");
    let target = Target::sqrt_iswap(topo)
        .with_calibration(calibration)
        .expect("skewed calibration covers every coupler");
    println!("device: {} (skewed calibration)\n", target.name());

    let circuit = consolidate(&qft(6, false));
    let engine = TrialEngine::new(&circuit, &target);

    let mut lanes: Vec<(&str, [f64; 5])> = StrategyKind::ALL
        .iter()
        .map(|&kind| (kind.name(), kind.one_hot()))
        .collect();
    lanes.push(("mixed", BALANCED_STRATEGY_MIX));

    for (name, mix) in lanes {
        let mut opts = TrialOptions::quick(Metric::EstimatedSuccess, 0xBEE);
        opts.layout_trials = 6;
        opts.strategy_mix = mix;
        let outcome = engine.run_detailed(true, &opts).expect("valid options");
        println!(
            "{name:<16} est. success {:.4}  (winner seeded by {}, {} candidates)",
            outcome.best.estimated_success(&target),
            outcome.strategy.name(),
            outcome.candidates
        );
    }
    println!("\nNoise-aware seeding starts trials inside the quiet region of the");
    println!("calibration, so post-selection picks from a better candidate pool.");
}
