//! A tour of the mirror-gate machinery: canonical coordinates, Eq. 1, and
//! the decomposition costs that make CNS "free" in the √iSWAP basis.
//!
//! Run with: `cargo run --release --example mirror_gates_tour`

use mirage::coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage::gates::{cnot, cns, cphase, iswap, swap};
use mirage::weyl::coords::{coords_of, WeylCoord};
use mirage::weyl::mirror::mirror_coord;

fn main() {
    println!("Canonical coordinates (paper convention, CNOT = (0.25π, 0, 0)):\n");
    for (name, gate) in [
        ("CNOT", cnot()),
        ("CNS = SWAP·CNOT", cns()),
        ("iSWAP", iswap()),
        ("SWAP", swap()),
        ("CPHASE(π/2)", cphase(std::f64::consts::FRAC_PI_2)),
    ] {
        let w = coords_of(&gate);
        let m = mirror_coord(&w);
        println!("{name:>16}: {w}   mirror -> {m}");
    }

    println!("\nDecomposition costs in the sqrt(iSWAP) basis (k = applications):\n");
    let set = CoverageSet::build(
        BasisGate::iswap_root(2),
        &CoverageOptions {
            max_k: 3,
            samples_per_k: 2000,
            inflation: 0.012,
            mirrors: false,
            seed: 1,
        },
    );
    for (name, w) in [
        ("CNOT", WeylCoord::CNOT),
        ("iSWAP (CNOT's mirror)", WeylCoord::ISWAP),
        ("SWAP", WeylCoord::SWAP),
        ("identity (SWAP's mirror)", WeylCoord::IDENTITY),
        (
            "CPHASE(π/2)",
            WeylCoord::cphase(std::f64::consts::FRAC_PI_2),
        ),
        (
            "pSWAP(π/2) (its mirror)",
            mirror_coord(&WeylCoord::cphase(std::f64::consts::FRAC_PI_2)),
        ),
    ] {
        match set.min_k(&w) {
            Some(k) => println!("{name:>26}: k = {k}  (duration {:.1})", k as f64 * 0.5),
            None => println!("{name:>26}: beyond built depth"),
        }
    }
    println!("\nCNOT and its mirror both cost k = 2 — the \"free\" data movement");
    println!("MIRAGE exploits. CPHASE mirrors cost one extra application, so the");
    println!("router only takes them when the absorbed SWAP pays for it.");
}
