//! End-to-end basis translation: route a circuit with MIRAGE, then
//! translate it into explicit `√iSWAP + 1Q` pulses and verify the result
//! against the input with the statevector simulator.
//!
//! Run with: `cargo run --release --example pulse_translation`

use mirage::circuit::generators::ghz;
use mirage::circuit::sim::run;
use mirage::core::{transpile, RouterKind, Target, TranspileOptions};
use mirage::coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage::synth::decompose::DecompOptions;
use mirage::synth::fidelity::pulse_duration;
use mirage::synth::translate::translate_circuit;
use mirage::topology::CouplingMap;
use std::sync::Arc;

fn main() {
    let circuit = {
        let mut c = ghz(4);
        c.cx(0, 3).cx(1, 3); // extra long-range gates to force routing
        c
    };
    let cov = Arc::new(CoverageSet::build(
        BasisGate::iswap_root(2),
        &CoverageOptions {
            max_k: 3,
            samples_per_k: 2000,
            inflation: 0.012,
            mirrors: false,
            seed: 3,
        },
    ));

    let target = Target::with_coverage(CouplingMap::line(4), cov.clone());
    let mut opts = TranspileOptions::quick(RouterKind::Mirage, 5);
    opts.use_vf2 = false;
    let routed = transpile(&circuit, &target, &opts).expect("transpiles");
    println!(
        "routed: {} 2Q gates, {} swaps, {} mirrors",
        routed.metrics.two_qubit_gates,
        routed.metrics.swaps_inserted,
        routed.metrics.mirrors_accepted
    );

    let dopts = DecompOptions {
        restarts: 6,
        evals_per_restart: 6000,
        infidelity_target: 1e-9,
        seed: 9,
    };
    let (pulses, stats) = translate_circuit(&routed.circuit, &cov, &dopts);
    println!(
        "translated: {} sqrt(iSWAP) pulses, residual infidelity {:.2e}",
        stats.pulses, stats.worst_infidelity
    );
    println!(
        "pulse critical path: {:.1} sqrt(iSWAP) durations",
        pulse_duration(&pulses).expect("pure basis circuit") / 0.5
    );

    // Verify: simulate input and translated output; account for the routing
    // permutation on the output wires.
    let s_in = run(&circuit);
    let s_out = run(&pulses);
    let mut fid = 0.0;
    // Project the physical state back through the final layout.
    let mut amps = vec![mirage::math::Complex64::ZERO; 1 << circuit.n_qubits];
    for (s, &a) in s_in.amps.iter().enumerate() {
        let mut t = 0usize;
        for l in 0..circuit.n_qubits {
            if s & (1 << l) != 0 {
                t |= 1 << routed.final_layout.phys(l);
            }
        }
        amps[t] = a;
    }
    let mut acc = mirage::math::Complex64::ZERO;
    for (a, b) in amps.iter().zip(&s_out.amps) {
        acc += a.conj() * *b;
    }
    fid += acc.norm_sqr();
    println!("statevector fidelity vs input: {fid:.9}");
    assert!(fid > 1.0 - 1e-6, "translation must preserve semantics");
    println!("OK — pulses implement the original circuit exactly.");
}
