//! Quickstart: transpile a small variational circuit onto a line topology
//! with the SABRE baseline and with MIRAGE, and compare the results.
//!
//! Run with: `cargo run --release --example quickstart`

use mirage::circuit::generators::two_local_full;
use mirage::core::{transpile, RouterKind, Target, TranspileOptions};
use mirage::topology::CouplingMap;

fn main() {
    // A fully entangling TwoLocal ansatz — the motivating workload of the
    // paper's Fig. 8 — on a 5-qubit line.
    let circuit = two_local_full(5, 1, 42);
    let target = Target::sqrt_iswap(CouplingMap::line(5));
    println!(
        "input: {} qubits, {} two-qubit gates, target {}\n",
        circuit.n_qubits,
        circuit.two_qubit_gate_count(),
        target.name()
    );

    for (label, router) in [
        ("SABRE baseline", RouterKind::Sabre),
        ("MIRAGE (swap metric)", RouterKind::MirageSwaps),
        ("MIRAGE (depth metric)", RouterKind::Mirage),
    ] {
        let mut opts = TranspileOptions::quick(router, 7);
        opts.use_vf2 = false; // force routing so the comparison is visible
        let out = transpile(&circuit, &target, &opts).expect("transpilation succeeds");
        println!("{label}:");
        println!(
            "  depth estimate   : {:.2} (iSWAP time units)",
            out.metrics.depth_estimate
        );
        println!("  total gate cost  : {:.2}", out.metrics.total_gate_cost);
        println!("  SWAPs inserted   : {}", out.metrics.swaps_inserted);
        println!(
            "  mirrors accepted : {} ({:.0}% of decisions)\n",
            out.metrics.mirrors_accepted,
            100.0 * out.metrics.mirror_rate
        );
    }
}
