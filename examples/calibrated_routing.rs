//! Calibration-aware routing: transpile a QFT onto a heavy-hex device with
//! a synthetic (seeded-random) calibration, comparing the depth metric
//! against the noise-aware `Metric::EstimatedSuccess` post-selection.
//!
//! Run with: `cargo run --release --example calibrated_routing`

use mirage::circuit::generators::qft;
use mirage::core::{transpile, Calibration, Metric, RouterKind, Target, TranspileOptions};
use mirage::math::Rng;
use mirage::topology::CouplingMap;

fn main() {
    let topo = CouplingMap::heavy_hex(3);
    let calibration = Calibration::synthetic(&topo, &mut Rng::new(0xD06E));
    println!(
        "device: {} ({} qubits, {} calibrated couplers)",
        topo.name(),
        topo.n_qubits(),
        calibration.edges().count()
    );
    // The same file format `mirage-cli --calibration` consumes:
    let preview: String =
        calibration
            .to_text()
            .lines()
            .take(4)
            .fold(String::new(), |mut acc, line| {
                acc.push_str("  ");
                acc.push_str(line);
                acc.push('\n');
                acc
            });
    print!("calibration preview:\n{preview}  ...\n\n");

    let target = Target::sqrt_iswap(topo)
        .with_calibration(calibration)
        .expect("synthetic calibration covers every coupler");
    let circuit = qft(6, false);

    for (label, router, metric) in [
        ("SABRE (swap metric)", RouterKind::Sabre, None),
        ("MIRAGE (depth metric)", RouterKind::Mirage, None),
        (
            "MIRAGE (success metric)",
            RouterKind::Mirage,
            Some(Metric::EstimatedSuccess),
        ),
    ] {
        let mut opts = TranspileOptions::quick(router, 11);
        opts.use_vf2 = false; // force routing so the metrics differ visibly
        if let Some(metric) = metric {
            opts = opts.with_metric(metric);
        }
        let out = transpile(&circuit, &target, &opts).expect("transpilation succeeds");
        println!("{label}:");
        println!(
            "  est. success : {:.4} (incl. readout)",
            out.metrics.estimated_success
        );
        println!("  depth        : {:.2}", out.metrics.depth_estimate);
        println!(
            "  swaps / mirrors : {} / {}\n",
            out.metrics.swaps_inserted, out.metrics.mirrors_accepted
        );
    }
    println!("Routing for predicted success keeps traffic off the noisy couplers;");
    println!("mirrors absorb SWAPs so MIRAGE pays fewer error-prone applications.");
}
