//! Compute Haar scores for the iSWAP family with and without mirror
//! gates — a fast, small-sample version of the paper's Table I.
//!
//! Run with: `cargo run --release --example haar_scores`

use mirage::coverage::haar::{haar_score, FidelityModel};
use mirage::coverage::set::{BasisGate, CoverageOptions, CoverageSet};

fn main() {
    let model = FidelityModel::paper_default();
    println!("Haar scores (5000 samples; paper Table I in parentheses)\n");
    let paper = [
        ("sqrt(iSWAP)", 2u32, 4usize, (1.105, 1.029)),
        ("cbrt(iSWAP)", 3, 5, (0.9907, 0.9545)),
        ("4th-root(iSWAP)", 4, 7, (0.9599, 0.8997)),
    ];
    for (label, n, max_k, (paper_plain, paper_mirror)) in paper {
        let mut scores = Vec::new();
        for mirrors in [false, true] {
            let set = CoverageSet::build(
                BasisGate::iswap_root(n),
                &CoverageOptions {
                    max_k,
                    samples_per_k: 2500,
                    inflation: 0.012,
                    mirrors,
                    seed: 17 + u64::from(n),
                },
            );
            let hs = haar_score(&set, &model, 5000, 23);
            scores.push(hs.score);
        }
        println!(
            "{label:>16}: standard {:.4} ({paper_plain})   mirror {:.4} ({paper_mirror})",
            scores[0], scores[1]
        );
    }
    println!("\nLower is better; mirrors always help, and the gain grows as the");
    println!("basis fraction shrinks — the paper's motivation for fractional iSWAPs.");
}
