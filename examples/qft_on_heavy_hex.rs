//! Route a QFT onto the paper's 57-qubit heavy-hex device and onto the 6×6
//! square lattice, comparing the SABRE baseline against MIRAGE.
//!
//! Run with: `cargo run --release --example qft_on_heavy_hex`

use mirage::circuit::generators::qft;
use mirage::core::{transpile, RouterKind, Target, TranspileOptions};
use mirage::topology::CouplingMap;

fn main() {
    let circuit = qft(12, false);
    println!(
        "QFT-12: {} two-qubit gates (fully connected interaction graph)\n",
        circuit.two_qubit_gate_count()
    );

    for topo in [CouplingMap::heavy_hex(5), CouplingMap::grid(6, 6)] {
        let target = Target::sqrt_iswap(topo);
        println!("== {} ({} qubits) ==", target.name(), target.n_qubits());
        let mut base = f64::NAN;
        for (label, router) in [("SABRE", RouterKind::Sabre), ("MIRAGE", RouterKind::Mirage)] {
            let opts = TranspileOptions::quick(router, 11);
            let out = transpile(&circuit, &target, &opts).expect("transpiles");
            if label == "SABRE" {
                base = out.metrics.depth_estimate;
            }
            println!(
                "  {label:>6}: depth {:7.2}  cost {:7.2}  swaps {:3}  mirrors {:3}",
                out.metrics.depth_estimate,
                out.metrics.total_gate_cost,
                out.metrics.swaps_inserted,
                out.metrics.mirrors_accepted,
            );
            if label == "MIRAGE" {
                let gain = 100.0 * (base - out.metrics.depth_estimate) / base;
                println!("  depth reduction: {gain:.1}%");
            }
        }
        println!();
    }
}
